#include "exec/op/aggregate_op.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "algebra/evaluator.h"
#include "common/hash.h"
#include "common/logging.h"
#include "exec/op/generalize_op.h"
#include "expr/predicate_kernel.h"

namespace csm {

namespace {

/// One hash table maintained during the scan: either a user-declared
/// basic measure or the implicit region enumerator (S_base) of a match
/// join.
struct BaseJob {
  std::string table_name;
  Granularity gran;
  AggSpec agg;
  BoundExpr where;  // empty => no filter
  bool has_where = false;
  // Columnar compilation of `where` (vectorized runs only); nullopt
  // when the shape is unsupported and the row interpreter filters.
  std::optional<PredicateKernel> kernel;
  int pass = -1;  // GranularitySweep pass of this job's granularity
  AggTable states;
};

/// Per-executor scan scratch, created lazily on the executor's first
/// morsel so allocation and the worker span land on the right thread.
struct ExecutorScratch {
  std::unique_ptr<RecordBatch> batch;
  std::optional<GranularitySweep::Columns> cols;
  std::vector<double> slots;
  // Private copies of the jobs' filter expressions: BoundExpr::Eval uses
  // an internal mutable stack, so a shared instance evaluated from
  // several executors at once silently corrupts predicate results.
  std::vector<BoundExpr> where;
  // Same reasoning for the compiled kernels: Select mutates internal
  // mask scratch.
  std::vector<std::optional<PredicateKernel>> kernels;
  RegionKey key;
  // Vectorized-scan scratch: selection vector, full-batch key/hash
  // buffers cached per pass for unfiltered jobs, dense gather buffers
  // for filtered jobs, raw column pointer tables.
  std::vector<uint32_t> sel;
  std::vector<std::vector<uint64_t>> pass_keys;
  std::vector<std::vector<uint64_t>> pass_hashes;
  std::vector<char> pass_ready;
  std::vector<uint64_t> dense_keys;
  std::vector<uint64_t> dense_hashes;
  std::vector<const Value*> dim_ptrs;
  std::vector<const double*> measure_ptrs;
  SpanId span = kNoSpan;
  uint64_t batches = 0;
  uint64_t rows = 0;
  uint64_t batches_skipped = 0;  // zone-map whole-batch filter skips
};

}  // namespace

std::string AggregateOp::Describe(const Schema&) const {
  return "accumulate " + std::to_string(num_tables_) +
         " agg table(s); morsel work-stealing scan, merged in morsel "
         "order; " +
         vec_.Summary();
}

Status AggregateOp::Run(PlanContext& ctx) {
  CSM_CHECK(ctx.fact != nullptr)
      << "the aggregate stage scans an in-memory fact table";
  CSM_CHECK(ctx.generalize != nullptr)
      << "plan is missing the generalize stage";
  const Workflow& workflow = *ctx.workflow;
  const Schema& schema = *workflow.schema();
  const FactTable& fact = *ctx.fact;
  const int d = schema.num_dims();
  const int m = schema.num_measures();
  const EngineOptions& options = ctx.exec->options;
  Tracer& tracer = ctx.tracer();

  // The scan span also covers job planning: for this stage "scan" is the
  // whole streaming phase, and there is no sort to attribute setup to.
  ScopedSpan scan_span(&tracer, "scan", ctx.root());

  // ---- Plan: collect every hash table the scan must maintain.
  std::vector<BaseJob> jobs;
  std::map<std::vector<int>, size_t> enumerator_by_gran;
  const GranularitySweep& sweep = ctx.generalize->spec();
  const auto fact_vars = FactRowVars(schema);
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op == MeasureOp::kBaseAgg) {
      BaseJob job;
      job.table_name = def.name;
      job.gran = def.gran;
      job.agg = def.agg;
      job.states = AggTable(def.agg.kind, d);
      if (def.where != nullptr) {
        CSM_ASSIGN_OR_RETURN(job.where,
                             BoundExpr::Bind(*def.where, fact_vars));
        job.has_where = true;
        if (options.vectorized) {
          job.kernel = PredicateKernel::Compile(*def.where, fact_vars, d);
        }
      }
      jobs.push_back(std::move(job));
    } else if (def.op == MeasureOp::kMatch) {
      auto key = def.gran.levels();
      if (enumerator_by_gran.find(key) == enumerator_by_gran.end()) {
        BaseJob job;
        job.table_name = "__regions" + def.gran.ToString(schema);
        job.gran = def.gran;
        job.agg = AggSpec{AggKind::kNone, -1};
        job.states = AggTable(AggKind::kNone, d);
        enumerator_by_gran[key] = jobs.size();
        jobs.push_back(std::move(job));
      }
    }
  }
  for (BaseJob& job : jobs) {
    job.pass = sweep.PassOf(job.gran);
    CSM_CHECK(job.pass >= 0) << "granularity missing from the sweep spec";
  }

  // Dictionary binding: compile each kernel's dim-vs-const comparisons
  // into per-dictionary bitsets so the batch filter probes one byte per
  // code, and zone maps can veto whole batches. The bitsets hold the
  // exact comparisons the row loops would run, so masks are unchanged.
  const DictPlan* dict = ctx.dict.get();
  bool any_dict_kernel = false;
  size_t dict_bits = 0;
  if (dict != nullptr) {
    for (BaseJob& job : jobs) {
      if (job.kernel.has_value()) {
        job.kernel->BindDictionaries(dict->views.data(), d);
        any_dict_kernel |= job.kernel->dict_bound() > 0;
        dict_bits += job.kernel->dict_bits();
      }
    }
  }

  // ---- The single scan (no sort): the row space is cut into fixed-size
  // morsels, executors of the shared pool work-steal them, and each
  // morsel fills private partial tables over columnar sub-batches.
  const size_t batch_cap = std::max<size_t>(1, options.scan_batch_rows);
  const size_t morsel_rows = std::max<size_t>(1, options.morsel_rows);
  const size_t total_rows = fact.num_rows();
  const size_t num_morsels =
      total_rows == 0 ? 0 : (total_rows + morsel_rows - 1) / morsel_rows;
  const bool vectorized = options.vectorized;

  // Passes referenced by an unfiltered job: the vectorized path encodes
  // each one's full-batch key buffer + hashes at most once per batch,
  // shared by every unfiltered job at that granularity. Filtered jobs
  // gather-encode only their selected rows instead, so a selective
  // filter also cuts the encoding and hashing work.
  std::vector<int> full_passes;
  {
    std::vector<char> used(static_cast<size_t>(sweep.num_passes()), 0);
    for (const BaseJob& job : jobs) {
      if (!job.has_where && !used[job.pass]) {
        used[job.pass] = 1;
        full_passes.push_back(job.pass);
      }
    }
  }

  std::vector<std::vector<AggTable>> partials(num_morsels);
  std::vector<ExecutorScratch> scratch(ctx.pool->workers() + 1);

  auto body = [&](size_t morsel, size_t begin, size_t end,
                  int executor) -> Status {
    ExecutorScratch& s = scratch[executor];
    if (s.batch == nullptr) {
      s.batch = std::make_unique<RecordBatch>(d, m, batch_cap);
      s.cols.emplace(sweep.MakeColumns(batch_cap, dict));
      s.slots.resize(d + m);
      s.key.resize(d);
      s.where.reserve(jobs.size());
      for (const BaseJob& job : jobs) s.where.push_back(job.where);
      if (vectorized) {
        s.kernels.reserve(jobs.size());
        for (const BaseJob& job : jobs) s.kernels.push_back(job.kernel);
        s.sel.resize(batch_cap);
        s.pass_keys.assign(static_cast<size_t>(sweep.num_passes()), {});
        s.pass_hashes.assign(static_cast<size_t>(sweep.num_passes()), {});
        s.pass_ready.assign(static_cast<size_t>(sweep.num_passes()), 0);
        for (int p : full_passes) {
          s.pass_keys[p].resize(batch_cap * static_cast<size_t>(d));
          s.pass_hashes[p].resize(batch_cap);
        }
        s.dense_keys.resize(batch_cap * static_cast<size_t>(d));
        s.dense_hashes.resize(batch_cap);
        s.dim_ptrs.resize(d);
        s.measure_ptrs.resize(m);
      }
      s.span = tracer.BeginSpan("worker", scan_span.id());
    }
    std::vector<AggTable>& part = partials[morsel];
    part.reserve(jobs.size());
    for (const BaseJob& job : jobs) {
      part.emplace_back(job.agg.kind, d);
    }
    RecordBatch& batch = *s.batch;
    for (size_t at = begin; at < end; at += batch_cap) {
      const size_t n = std::min(batch_cap, end - at);
      batch.FillFromTable(fact, at, n);
      if (!vectorized) {
        s.cols->Apply(batch, n);
        // Scalar reference path: per-row interpreter filter, per-row
        // key gather and table probe. The vectorized path below is
        // bit-identical to this loop by construction.
        for (size_t j = 0; j < jobs.size(); ++j) {
          const BaseJob& job = jobs[j];
          const double* arg_col =
              job.agg.arg >= 0 ? batch.measure_col(job.agg.arg)
                               : nullptr;
          AggTable& table = part[j];
          for (size_t r = 0; r < n; ++r) {
            if (job.has_where) {
              for (int i = 0; i < d; ++i) {
                s.slots[i] = static_cast<double>(batch.dim_col(i)[r]);
              }
              for (int i = 0; i < m; ++i) {
                s.slots[d + i] = batch.measure_col(i)[r];
              }
              if (!s.where[j].EvalBool(s.slots.data())) continue;
            }
            for (int i = 0; i < d; ++i) {
              s.key[i] = s.cols->col(job.pass, i)[r];
            }
            table.Update(s.key.data(),
                         arg_col != nullptr ? arg_col[r] : 1.0);
          }
        }
      } else {
        // Vectorized path. Unfiltered jobs share a full-batch key/hash
        // encode of their pass (one strided sweep per dimension,
        // column-wise hashing — the incremental HashCombine fold
        // reproduces HashSpan bit for bit). Filtered jobs first build a
        // selection vector with their compiled kernel (or the
        // interpreter when the shape didn't compile), then
        // gather-encode and hash only the selected rows, so encoding
        // cost scales with selectivity. Either way the fold runs
        // through the prefetched bulk probe in ascending row order.
        s.cols->BeginBatch(batch, n);
        for (int i = 0; i < d; ++i) s.dim_ptrs[i] = batch.dim_col(i);
        for (int i = 0; i < m; ++i) {
          s.measure_ptrs[i] = batch.measure_col(i);
        }
        for (int p : full_passes) s.pass_ready[p] = 0;
        // Zone maps: one min/max pass per dim column per batch, judged
        // against each dict-bound kernel. A kAllFalse verdict skips the
        // job's whole batch — no generalize pass, no selection, no
        // encode; kAllTrue selects every row without running masks.
        const uint32_t* zone_min = nullptr;
        const uint32_t* zone_max = nullptr;
        const uint32_t* const* code_cols = batch.code_cols();
        if (any_dict_kernel && code_cols != nullptr) {
          batch.CodeZones(&zone_min, &zone_max);
        }
        for (size_t j = 0; j < jobs.size(); ++j) {
          const BaseJob& job = jobs[j];
          const double* arg_col =
              job.agg.arg >= 0 ? batch.measure_col(job.agg.arg)
                               : nullptr;
          if (!job.has_where) {
            s.cols->EnsurePass(job.pass);
            if (!s.pass_ready[job.pass]) {
              s.pass_ready[job.pass] = 1;
              uint64_t* keys = s.pass_keys[job.pass].data();
              uint64_t* hashes = s.pass_hashes[job.pass].data();
              for (int i = 0; i < d; ++i) {
                const Value* col = s.cols->col(job.pass, i);
                uint64_t* out = keys + i;
                for (size_t r = 0; r < n; ++r) out[r * d] = col[r];
              }
              std::fill(hashes, hashes + n, kHashSpanSeed);
              for (int i = 0; i < d; ++i) {
                HashCombineColumn(hashes, s.cols->col(job.pass, i), n);
              }
              for (size_t r = 0; r < n; ++r) {
                hashes[r] = NonZeroHash(hashes[r]);
              }
            }
            part[j].FoldBatch(s.pass_keys[job.pass].data(),
                              s.pass_hashes[job.pass].data(), arg_col,
                              nullptr, n);
            continue;
          }
          size_t sel_n = 0;
          if (s.kernels[j].has_value()) {
            BatchVerdict verdict = BatchVerdict::kUnknown;
            if (zone_min != nullptr && s.kernels[j]->dict_bound() > 0) {
              verdict = s.kernels[j]->JudgeBatch(zone_min, zone_max);
            }
            if (verdict == BatchVerdict::kAllFalse) {
              ++s.batches_skipped;
              continue;
            }
            if (verdict == BatchVerdict::kAllTrue) {
              for (size_t r = 0; r < n; ++r) {
                s.sel[r] = static_cast<uint32_t>(r);
              }
              sel_n = n;
            } else {
              sel_n = s.kernels[j]->Select(s.dim_ptrs.data(),
                                           s.measure_ptrs.data(), n,
                                           s.sel.data(), code_cols);
            }
          } else {
            for (size_t r = 0; r < n; ++r) {
              for (int i = 0; i < d; ++i) {
                s.slots[i] = static_cast<double>(batch.dim_col(i)[r]);
              }
              for (int i = 0; i < m; ++i) {
                s.slots[d + i] = batch.measure_col(i)[r];
              }
              if (s.where[j].EvalBool(s.slots.data())) {
                s.sel[sel_n++] = static_cast<uint32_t>(r);
              }
            }
          }
          s.cols->EnsurePass(job.pass);
          uint64_t* keys = s.dense_keys.data();
          uint64_t* hashes = s.dense_hashes.data();
          std::fill(hashes, hashes + sel_n, kHashSpanSeed);
          for (int i = 0; i < d; ++i) {
            const Value* col = s.cols->col(job.pass, i);
            uint64_t* out = keys + i;
            for (size_t t = 0; t < sel_n; ++t) {
              const uint64_t v = col[s.sel[t]];
              out[t * d] = v;
              hashes[t] = HashCombine(hashes[t], v);
            }
          }
          for (size_t t = 0; t < sel_n; ++t) {
            hashes[t] = NonZeroHash(hashes[t]);
          }
          part[j].FoldBatch(keys, hashes, arg_col, s.sel.data(), sel_n);
        }
      }
      ++s.batches;
      s.rows += n;
    }
    return Status::OK();
  };

  MorselStats mstats;
  const Status scan_status =
      ParallelMorsels(*ctx.pool, total_rows, morsel_rows,
                      options.parallel_threads, ctx.exec->cancel, body,
                      &mstats);

  uint64_t batches = 0;
  uint64_t batches_skipped = 0;
  for (ExecutorScratch& s : scratch) {
    if (s.batch == nullptr) continue;
    batches += s.batches;
    batches_skipped += s.batches_skipped;
    // Named "rows", not "rows_scanned": ExecStats sums rows_scanned over
    // the whole span subtree and the scan span already totals it.
    tracer.AddCounter(s.span, "rows", static_cast<double>(s.rows));
    tracer.AddCounter(s.span, "batches", static_cast<double>(s.batches));
    tracer.EndSpan(s.span);
  }
  CSM_RETURN_NOT_OK(scan_status);

  // ---- Deterministic merge: fold the partial tables into the job
  // tables in morsel index order. Morsel boundaries are a pure function
  // of (rows, morsel_rows), so the accumulation order — and the floating
  // point result — is identical for every executor count.
  for (size_t mi = 0; mi < num_morsels; ++mi) {
    for (size_t j = 0; j < jobs.size(); ++j) {
      jobs[j].states.MergeFrom(partials[mi][j]);
    }
    partials[mi].clear();
    partials[mi].shrink_to_fit();
  }

  tracer.AddCounter(scan_span.id(), "rows_scanned",
                    static_cast<double>(total_rows));
  tracer.AddCounter(scan_span.id(), "batches",
                    static_cast<double>(batches));
  tracer.AddCounter(scan_span.id(), "adapter_batches", 0);
  tracer.AddCounter(scan_span.id(), "morsels",
                    static_cast<double>(mstats.morsels));
  tracer.AddCounter(scan_span.id(), "steals",
                    static_cast<double>(mstats.steals));
  tracer.AddCounter(scan_span.id(), "pool_threads",
                    static_cast<double>(mstats.pool_threads));
  tracer.SetAttr(scan_span.id(), "batch_rows", std::to_string(batch_cap));
  tracer.SetAttr(scan_span.id(), "morsel_rows",
                 std::to_string(morsel_rows));
  tracer.SetAttr(scan_span.id(), "vectorized", vectorized ? "on" : "off");
  tracer.SetAttr(scan_span.id(), "dict", dict != nullptr ? "on" : "off");
  tracer.AddCounter(scan_span.id(), "batches_skipped",
                    static_cast<double>(batches_skipped));
  if (dict != nullptr) {
    tracer.AddCounter(scan_span.id(), "dict_luts",
                      static_cast<double>(dict->num_luts));
    tracer.AddCounter(scan_span.id(), "dict_bits",
                      static_cast<double>(dict_bits));
  }

  // Peak memory: all hash tables coexist at end of scan.
  {
    uint64_t peak_entries = 0;
    uint64_t peak_bytes = 0;
    for (const BaseJob& job : jobs) {
      peak_entries += job.states.size();
      peak_bytes += job.states.ApproxBytes();
      tracer.SetGaugeMax(scan_span.id(),
                         "hash_entries_hw/" + job.table_name,
                         static_cast<double>(job.states.size()));
    }
    tracer.SetGaugeMax(scan_span.id(), "peak_hash_entries",
                       static_cast<double>(peak_entries));
    tracer.SetGaugeMax(scan_span.id(), "peak_hash_bytes",
                       static_cast<double>(peak_bytes));
  }

  ctx.agg_results.clear();
  ctx.agg_results.reserve(jobs.size());
  for (BaseJob& job : jobs) {
    ctx.agg_results.push_back(
        AggResult{std::move(job.table_name), job.gran,
                  std::move(job.states)});
  }
  return Status::OK();
}

}  // namespace csm
