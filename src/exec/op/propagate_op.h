#ifndef CSM_EXEC_OP_PROPAGATE_OP_H_
#define CSM_EXEC_OP_PROPAGATE_OP_H_

#include <string>
#include <string_view>

#include "exec/op/op.h"
#include "exec/op/vectorize.h"

namespace csm {

/// The paper's coordinated one-pass scan (§5.2, §5.3): consumes the
/// sorted record stream the scan stage prepared and evaluates every
/// measure of the workflow in a single pass through the computation
/// graph —
///
///  - each measure is a graph node holding its in-flight hash entries
///    ordered by the entry's position in the sort order (the mapKey of
///    Table 8);
///  - every stream (scan -> basic measures, finalized entries ->
///    dependent measures) carries a monotone *frontier*: a lower bound
///    on the order position of any future update, transformed across
///    computational arcs per the order/slack algebra of Table 6;
///  - a node's watermark is the minimum of its input frontiers; entries
///    strictly below it are finalized, emitted downstream in order, and
///    removed — bounding the memory footprint;
///  - at end of stream everything flushes.
///
/// The ordered scan is inherently sequential (finalization order *is*
/// the correctness argument), so this stage's parallelism lives upstream
/// in the pool-parallel sort; the hierarchy sweep comes from the shared
/// GeneralizeOp spec. Finished output tables land on PlanContext::tables
/// for the emit stage.
class PropagateOp : public PhysicalOp {
 public:
  /// `vec` carries the plan-time vectorization decisions for EXPLAIN;
  /// Run re-derives them from the workflow and the context options.
  explicit PropagateOp(VectorizeInfo vec = {}) : vec_(vec) {}

  std::string_view name() const override { return "propagate"; }
  std::string Describe(const Schema& schema) const override;
  Status Run(PlanContext& ctx) override;

 private:
  VectorizeInfo vec_;
};

}  // namespace csm

#endif  // CSM_EXEC_OP_PROPAGATE_OP_H_
