#ifndef CSM_EXEC_OP_OP_H_
#define CSM_EXEC_OP_OP_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "exec/agg_table.h"
#include "exec/exec_context.h"
#include "exec/scheduler.h"
#include "model/granularity.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"
#include "storage/record_batch.h"
#include "workflow/workflow.h"

namespace csm {

class GeneralizeOp;
struct DictPlan;
struct PhysicalPlan;

/// One accumulated aggregation table flowing from AggregateOp to the
/// emit stage: the scan is done, the states are not yet finalized (the
/// materialize step belongs to the combine phase, like the engines it
/// replaced).
struct AggResult {
  std::string table_name;
  Granularity gran;
  AggTable states;
};

/// The shared blackboard a PhysicalPlan threads through its operators:
/// immutable run inputs (workflow, fact table or fact file, ExecContext,
/// scheduler pool) plus the data bus the pipeline stages hand results
/// through — the sorted table / batch cursor produced by ScanOp, the
/// registered GeneralizeOp sweep, accumulated aggregation state,
/// materialized measure tables, and finally the run's EvalOutput.
///
/// Engine-specific pipelines (multi-pass, parallel shards, relational)
/// park their private cross-operator state in `engine_state`.
struct PlanContext {
  // ---- Run inputs (set by PhysicalPlan::Execute*) ----
  const Workflow* workflow = nullptr;
  const FactTable* fact = nullptr;      // null for out-of-core file runs
  const std::string* fact_path = nullptr;  // null for in-memory runs
  ExecContext* exec = nullptr;          // options / cancellation
  RunScope* scope = nullptr;            // effective tracer + engine root
  ThreadPool* pool = nullptr;           // shared scheduler pool
  const PhysicalPlan* plan = nullptr;

  // ---- Data bus between operators ----
  std::unique_ptr<FactTable> sorted;    // ScanOp: sorted in-memory clone
  std::unique_ptr<BatchCursor> cursor;  // ScanOp: the record stream
  const GeneralizeOp* generalize = nullptr;  // registered sweep spec
  // Dictionary artifacts for the scanned table (code→value LUTs per
  // sweep pass + dictionary views for filter bitsets), published by
  // GeneralizeOp when EngineOptions::dict_encoding applies; null on the
  // raw path.
  std::shared_ptr<const DictPlan> dict;
  std::vector<AggResult> agg_results;   // AggregateOp -> EmitOp
  std::map<std::string, MeasureTable> tables;  // finished measure tables
  EvalOutput* out = nullptr;            // final destination
  std::shared_ptr<void> engine_state;   // engine-specific shared state

  Tracer& tracer() { return scope->tracer(); }
  SpanId root() const { return scope->root(); }
  bool cancelled() const { return exec->cancelled(); }
};

/// One stage of a physical plan. Operators run in sequence over the
/// shared PlanContext; an operator is single-use (it may keep run state
/// in members between Run and the plan's destruction) and internally
/// parallel — morsel- or task-level parallelism happens *inside* a stage
/// via the scheduler, never by running stages concurrently.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  /// Short stage name ("scan", "aggregate", ...), used in EXPLAIN output.
  virtual std::string_view name() const = 0;

  /// One-line human-readable description for EXPLAIN.
  virtual std::string Describe(const Schema& schema) const = 0;

  virtual Status Run(PlanContext& ctx) = 0;
};

}  // namespace csm

#endif  // CSM_EXEC_OP_OP_H_
