#ifndef CSM_EXEC_OP_SCAN_OP_H_
#define CSM_EXEC_OP_SCAN_OP_H_

#include <optional>
#include <string>
#include <string_view>

#include "exec/op/op.h"
#include "model/sort_key.h"
#include "obs/trace.h"
#include "storage/external_sorter.h"
#include "storage/temp_file.h"

namespace csm {

/// Input stage: prepares the record stream the rest of the pipeline
/// consumes. Three physical forms:
///  - kUnsorted: batch cursor straight over the in-memory fact table (the
///    single-scan engine — no sort, morsel stage reads the table by row
///    ranges);
///  - kSortTable: clone the fact table and sort it by the plan's order
///    (the in-memory sort/scan path), publishing both the sorted table
///    and a cursor over it;
///  - kSortFile: external-sort the on-disk fact file into runs and
///    publish the merged streaming cursor (the out-of-core path; the
///    dataset is never fully resident).
/// Both sorting forms run on the shared scheduler pool via the external
/// sorter and record the sort span + SortStats counters.
class ScanOp : public PhysicalOp {
 public:
  enum class Mode { kUnsorted, kSortTable, kSortFile };

  explicit ScanOp(Mode mode) : mode_(mode) {}

  std::string_view name() const override { return "scan"; }
  std::string Describe(const Schema& schema) const override;
  Status Run(PlanContext& ctx) override;

  /// Shared sort-span bookkeeping (also used by the relational engine's
  /// per-measure sorts).
  static void RecordSortMetrics(Tracer& tracer, SpanId span,
                                const SortStats& stats);

 private:
  Mode mode_;
  // The run files of a kSortFile sort must outlive the streaming cursor,
  // which lives in the PlanContext until the plan completes — so the
  // scratch dir is owned here, by an operator of the same plan.
  std::optional<TempDir> temp_;
};

}  // namespace csm

#endif  // CSM_EXEC_OP_SCAN_OP_H_
