#include "exec/op/emit_op.h"

#include <map>

#include "algebra/evaluator.h"
#include "algebra/measure_ops.h"
#include "common/logging.h"

namespace csm {

std::string EmitOp::Describe(const Schema&) const {
  switch (mode_) {
    case Mode::kCollect:
      return "collect the finalized streams into output tables";
    case Mode::kComposite:
      return "materialize agg state, evaluate composites, select outputs";
  }
  return "?";
}

Status EmitOp::Run(PlanContext& ctx) {
  CSM_RETURN_NOT_OK(ctx.exec->CheckCancelled("combine"));
  switch (mode_) {
    case Mode::kCollect:
      return RunCollect(ctx);
    case Mode::kComposite:
      return RunComposite(ctx);
  }
  return Status::Internal("unknown emit mode");
}

Status EmitOp::RunCollect(PlanContext& ctx) {
  ScopedSpan combine_span(&ctx.tracer(), "combine", ctx.root());
  for (auto& [name, table] : ctx.tables) {
    table.SortByKeyLex();
    ctx.out->tables.emplace(name, std::move(table));
  }
  ctx.tables.clear();
  return Status::OK();
}

Status EmitOp::RunComposite(PlanContext& ctx) {
  const Workflow& workflow = *ctx.workflow;
  const Schema& schema = *workflow.schema();
  Tracer& tracer = ctx.tracer();
  ScopedSpan combine_span(&tracer, "combine", ctx.root());

  // ---- Finalize the accumulated base tables.
  std::map<std::string, MeasureTable>& tables = ctx.tables;
  for (AggResult& result : ctx.agg_results) {
    tables.emplace(result.table_name,
                   result.states.Materialize(workflow.schema(),
                                             result.gran,
                                             result.table_name));
  }
  ctx.agg_results.clear();

  // ---- Composite measures in topological order.
  for (const MeasureDef& def : workflow.measures()) {
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        break;  // already computed
      case MeasureOp::kRollup: {
        auto in = tables.find(def.input);
        CSM_CHECK(in != tables.end());
        const MeasureTable* source = &in->second;
        MeasureTable filtered(workflow.schema(), source->granularity(),
                              source->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(
              filtered, FilterMeasure(*source, *def.where, nullptr,
                                      source->name()));
          source = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashRollup(*source, def.gran, agg, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
      case MeasureOp::kMatch: {
        auto in = tables.find(def.input);
        CSM_CHECK(in != tables.end());
        const MeasureTable& regions =
            tables.at("__regions" + def.gran.ToString(schema));
        const MeasureTable* target = &in->second;
        MeasureTable filtered(workflow.schema(), target->granularity(),
                              target->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(
              filtered, FilterMeasure(*target, *def.where, nullptr,
                                      target->name()));
          target = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(
            MeasureTable result,
            HashMatchJoin(regions, *target, def.match, agg, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
      case MeasureOp::kCombine: {
        std::vector<const MeasureTable*> inputs;
        for (const std::string& name : def.combine_inputs) {
          auto it = tables.find(name);
          CSM_CHECK(it != tables.end());
          inputs.push_back(&it->second);
        }
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashCombine(inputs, *def.fc, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
    }
  }

  // ---- Keep only requested outputs.
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output && !ctx.exec->options.include_hidden) continue;
    auto it = tables.find(def.name);
    CSM_CHECK(it != tables.end());
    ctx.out->tables.emplace(def.name, std::move(it->second));
    tables.erase(it);
  }
  tables.clear();
  return Status::OK();
}

}  // namespace csm
