#ifndef CSM_EXEC_OP_PHYSICAL_PLAN_H_
#define CSM_EXEC_OP_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/engine.h"
#include "exec/op/op.h"
#include "model/sort_key.h"

namespace csm {

/// A lowered execution plan: the ordered operator pipeline one engine run
/// executes, plus the physical knobs the lowering froze (sort order,
/// morsel size, batch size, thread plan). Produced by LowerToPlan
/// (src/opt/lowering.h) — every engine's Run() is now "lower, execute";
/// `csm_query --explain` prints Describe() without executing.
///
/// Plans are single-use: operators may retain run state between stages,
/// so build a fresh plan per execution.
struct PhysicalPlan {
  std::string engine;     // root span name ("sort-scan", "single-scan"...)
  SortKey sort_key;       // resolved fact order; empty = unsorted scan
  size_t morsel_rows = 0;
  size_t scan_batch_rows = 0;
  int threads = 0;        // requested executors (0 = whole pool)
  // Encoding decision the lowering froze: true when the scan runs over
  // dictionary codes (EngineOptions::dict_encoding && vectorized, and
  // the input is an in-memory table rather than a file stream).
  bool dict_encoding = false;
  std::vector<std::unique_ptr<PhysicalOp>> ops;
  std::shared_ptr<void> engine_state;  // pre-bound engine-specific state

  /// Multi-line EXPLAIN rendering: header (engine, order, thread/morsel
  /// plan) followed by one numbered line per operator.
  std::string Describe(const Schema& schema) const;

  /// Runs the pipeline over an in-memory fact table. Opens the engine
  /// root span, seeds the PlanContext, runs every operator in order, and
  /// derives ExecStats from the span tree exactly like the hand-rolled
  /// engines did.
  Result<EvalOutput> Execute(const Workflow& workflow, const FactTable& fact,
                             ExecContext& ctx);

  /// Out-of-core variant: the fact data stays in `fact_path`
  /// (WriteFactTableBinary format) and operators stream it.
  Result<EvalOutput> ExecuteFile(const Workflow& workflow,
                                 const std::string& fact_path,
                                 ExecContext& ctx);

 private:
  Result<EvalOutput> Drive(const Workflow& workflow, const FactTable* fact,
                           const std::string* fact_path, ExecContext& ctx);
};

}  // namespace csm

#endif  // CSM_EXEC_OP_PHYSICAL_PLAN_H_
