#include "exec/op/propagate_op.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "algebra/evaluator.h"
#include "common/flat_hash.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include <optional>

#include "exec/exec_context.h"
#include "exec/op/generalize_op.h"
#include "exec/op/physical_plan.h"
#include "expr/predicate_kernel.h"
#include "storage/record_cursor.h"

namespace csm {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Order positions (the mapKey of Table 8)

/// Projects region keys at one granularity onto the usable prefix of the
/// dataset's order vector — the per-stream orders of Table 6:
///  - a component whose sort level is at least as fine as the region's
///    level is kept at the sort level;
///  - a component where the region is coarser is *coarsened to the
///    region's level and the order stops there* (a stream sorted by hour
///    is sorted by day, but nothing beyond that component is ordered);
///  - a dimension rolled to ALL ends the order outright.
class PosCalc {
 public:
  PosCalc() = default;
  PosCalc(const Schema& schema, const SortKey& key,
          const Granularity& gran) {
    for (const SortKeyPart& p : key.parts()) {
      const int from = gran.level(p.dim);
      if (from > p.level) {
        if (from < schema.dim(p.dim).hierarchy->all_level()) {
          parts_.push_back({p.dim, from, from});
        }
        break;
      }
      parts_.push_back({p.dim, from, p.level});
    }
  }

  size_t len() const { return parts_.size(); }

  /// `key` is a region key at the granularity this PosCalc was built for.
  void Compute(const Schema& schema, const Value* key,
               std::vector<Value>* out) const {
    out->resize(parts_.size());
    for (size_t i = 0; i < parts_.size(); ++i) {
      (*out)[i] = schema.dim(parts_[i].dim)
                      .hierarchy->Generalize(key[parts_[i].dim],
                                             parts_[i].from, parts_[i].to);
    }
  }

  int part_dim(size_t i) const { return parts_[i].dim; }
  int part_from(size_t i) const { return parts_[i].from; }
  int part_to(size_t i) const { return parts_[i].to; }

 private:
  struct Part {
    int dim;
    int from;
    int to;
  };
  std::vector<Part> parts_;
};

// ---------------------------------------------------------------------------
// Frontiers (the dynamic form of the paper's order+slack stream labels)

/// A monotone lower bound on the order position of every future update on
/// a stream. `closed` means the stream has ended (everything is past).
struct Frontier {
  std::vector<Value> vals;
  bool closed = false;
};

/// True iff an entry at position `pos` can no longer be touched by a
/// stream bounded below by `f` — i.e. pos <_lex f with strictness within
/// the common prefix. Ties (or a frontier too short to discriminate) keep
/// the entry alive: conservative, never incorrect.
bool StrictlyBefore(const Value* pos, size_t pos_len, const Frontier& f) {
  if (f.closed) return true;
  const size_t n = std::min(pos_len, f.vals.size());
  for (size_t i = 0; i < n; ++i) {
    if (pos[i] < f.vals[i]) return true;
    if (pos[i] > f.vals[i]) return false;
  }
  return false;
}

bool LexLess(const Value* a, const Value* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

/// Lexicographic minimum of the position prefixes in a table, maintained
/// incrementally so propagation rounds can prove "no entry is finalized
/// yet" in O(1) instead of sweeping the whole table. StrictlyBefore is
/// monotone in the position order, so if the minimum position is not
/// strictly before the watermark, no entry is.
struct MinPos {
  std::vector<Value> vals;
  bool valid = false;

  void Observe(const Value* pos, size_t len) {
    if (!valid) {
      vals.assign(pos, pos + len);
      valid = true;
    } else if (LexLess(pos, vals.data(), len)) {
      vals.assign(pos, pos + len);
    }
  }
  bool MayFlush(size_t len, const Frontier& f) const {
    return valid && StrictlyBefore(vals.data(), len, f);
  }
};

/// Conservative minimum: the frontier that finalizes no entry the other
/// would keep. On a tie over the common prefix the shorter frontier wins
/// (it finalizes less).
const Frontier& LowerOf(const Frontier& a, const Frontier& b) {
  if (a.closed) return b;
  if (b.closed) return a;
  const size_t n = std::min(a.vals.size(), b.vals.size());
  for (size_t i = 0; i < n; ++i) {
    if (a.vals[i] < b.vals[i]) return a;
    if (a.vals[i] > b.vals[i]) return b;
  }
  return a.vals.size() <= b.vals.size() ? a : b;
}

// ---------------------------------------------------------------------------
// Computation graph

enum class NodeKind {
  kBase,     // basic measure: updated directly from the scan
  kEnum,     // implicit region enumerator (S_base) for match joins
  kRollup,   // g over another measure's finalized stream
  kMatch,    // match join (self / parent-child / child-parent / sibling)
  kCombine,  // combine join
};

/// What a computational arc does to the entries it delivers. Mirrors the
/// four match-condition families plus the combine-join slots.
enum class ArcKind {
  kExists,       // region enumerator -> match/combine node
  kSelf,         // fold value into the same region
  kRollup,       // generalize key, fold (child/parent and roll-up arcs)
  kParentChild,  // buffer parent values; folded at child finalization
  kSibling,      // fan value out to the window box around the key
  kCombineSlot,  // fill slot i of a combine entry
};

struct NodeEntry {
  AggState state;
  std::vector<double> slots;  // combine nodes only
  bool exists = false;
};

struct EdgeRt {
  int producer = -1;
  int consumer = -1;
  ArcKind kind = ArcKind::kSelf;
  int slot = 0;
  bool has_filter = false;
  BoundExpr filter;  // bound over MeasureRowVars(producer)
  Frontier frontier;
  // kSibling: per producer-watermark component, how far (in sort-key
  // units) the window can reach back; subtracted when transforming the
  // producer's watermark into this edge's frontier.
  std::vector<int64_t> sibling_shift;
  // kParentChild: parent values awaiting children, keyed by
  // parent-pos ++ parent-key; evicted once the consumer watermark passes.
  FlatKeyMap<double> parent_values;
  MinPos min_pos;  // over parent_values' position prefixes
  PosCalc producer_pos;
};

struct NodeRt {
  NodeKind kind = NodeKind::kBase;
  std::string name;
  Granularity gran;
  AggSpec agg;
  MatchCond match;
  BoundExpr fc;        // combine
  size_t n_slots = 0;  // combine inputs
  bool has_where = false;
  BoundExpr where;  // base nodes: fact-row filter
  // Columnar compilation of `where` (vectorized runs only); nullopt =
  // unsupported shape, filter through the row interpreter. The ordered
  // scan is sequential, so the kernel's mutable scratch needs no
  // per-executor copies here.
  std::optional<PredicateKernel> where_kernel;

  PosCalc pos;
  FlatKeyMap<NodeEntry> entries;  // keyed pos ++ region key
  MinPos min_pos;                 // over entries' position prefixes
  Frontier watermark;

  std::vector<int> in_edges;
  std::vector<int> out_edges;

  bool keep_output = false;
  std::unique_ptr<MeasureTable> output;
};

/// The watermark-coordinated scan, run over the record stream the plan's
/// scan stage prepared. One instance per PropagateOp::Run.
class PropagateImpl {
 public:
  explicit PropagateImpl(PlanContext& ctx)
      : ctx_(ctx),
        workflow_(*ctx.workflow),
        options_(ctx.exec->options),
        schema_ptr_(workflow_.schema()),
        schema_(*schema_ptr_),
        d_(schema_.num_dims()),
        sort_key_(ctx.plan->sort_key) {}

  Status Run() {
    {
      // The graph build is setup work; the "plan" span folds its time
      // into the sort phase so the phase spans still cover the run.
      ScopedSpan plan_span(&ctx_.tracer(), "plan", ctx_.root());
      CSM_RETURN_NOT_OK(BuildGraph());
    }
    return Scan(*ctx_.cursor);
  }

  /// Moves the kept output tables onto the plan bus; the emit stage owns
  /// the final sort. Called by PropagateOp under the "combine" span.
  Status Collect() {
    for (auto& node : nodes_) {
      CSM_CHECK(node->entries.empty())
          << "node " << node->name << " retained entries after close";
      if (node->keep_output) {
        ctx_.tables.emplace(node->name, std::move(*node->output));
      }
    }
    return Status::OK();
  }

 private:
  /// The coordinated scan over an already-sorted batch stream. Keeps a
  /// one-batch lookahead so the propagation rounds can use the first
  /// record of the *next* batch as the scan frontier; rounds fire at
  /// batch boundaries once propagation_batch_records rows have been
  /// scanned since the previous round.
  Status Scan(BatchCursor& cursor) {
    Tracer& tracer = ctx_.tracer();
    ScopedSpan scan_span(&tracer, "scan", ctx_.root());
    Timer scan_timer;
    node_peak_entries_.assign(nodes_.size(), 0);
    const int m = schema_.num_measures();
    const size_t cap = std::max<size_t>(1, options_.scan_batch_rows);
    const size_t prop_batch =
        std::max<size_t>(1, options_.propagation_batch_records);
    const Granularity base_gran = Granularity::Base(schema_);

    // Scan nodes sharing a granularity share one generalized key-column
    // pass per batch, via the plan's shared sweep spec. With a dict plan
    // the pass is a LUT gather; passes materialize lazily so a zone-map
    // batch skip also skips the sweep.
    const GranularitySweep& sweep = ctx_.generalize->spec();
    const DictPlan* dict = ctx_.dict.get();
    GranularitySweep::Columns cols = sweep.MakeColumns(cap, dict);
    bool any_dict_kernel = false;
    uint64_t dict_bits = 0;
    if (dict != nullptr) {
      for (auto& node : nodes_) {
        if (node->where_kernel.has_value()) {
          node->where_kernel->BindDictionaries(dict->views.data(), d_);
          any_dict_kernel |= node->where_kernel->dict_bound() > 0;
          dict_bits += node->where_kernel->dict_bits();
        }
      }
    }
    uint64_t batches_skipped = 0;
    std::vector<int> node_pass(scan_nodes_.size());
    for (size_t s = 0; s < scan_nodes_.size(); ++s) {
      node_pass[s] = sweep.PassOf(nodes_[scan_nodes_[s]]->gran);
      CSM_CHECK(node_pass[s] >= 0)
          << "scan granularity missing from the sweep spec";
    }

    RecordBatch cur(d_, m, cap), next(d_, m, cap);
    std::vector<double> slots(d_ + m);
    RegionKey gen_key(d_), prev_key(d_), frontier(d_);
    std::vector<Value> map_key;
    uint64_t rows = 0, batches = 0, adapter_batches = 0;
    size_t rows_since_prop = 0;

    // Vectorized-scan scratch. Sorted input arrives in runs of equal
    // generalized keys; run ids (a prefix count of key boundaries,
    // computed once per pass per batch and shared by nodes at the same
    // granularity) let each node touch its entry map once per run and
    // accumulate distributive kinds in a register-local partial.
    const bool vectorized = options_.vectorized;
    std::vector<std::vector<uint32_t>> run_ids;  // by pass
    std::vector<uint8_t> run_boundary;
    std::vector<char> pass_runs_ready;
    std::vector<uint32_t> sel, iota;
    std::vector<const Value*> dim_ptrs(static_cast<size_t>(d_));
    std::vector<const double*> measure_ptrs(static_cast<size_t>(m));
    if (vectorized) {
      run_ids.assign(static_cast<size_t>(sweep.num_passes()), {});
      for (auto& v : run_ids) v.resize(cap);
      run_boundary.resize(cap);
      pass_runs_ready.assign(static_cast<size_t>(sweep.num_passes()), 0);
      sel.resize(cap);
      iota.resize(cap);
      for (size_t r = 0; r < cap; ++r) iota[r] = static_cast<uint32_t>(r);
    }

    CSM_ASSIGN_OR_RETURN(size_t cur_rows, cursor.NextBatch(&cur));
    while (cur_rows > 0) {
      CSM_ASSIGN_OR_RETURN(size_t next_rows, cursor.NextBatch(&next));
      ++batches;
      if (cursor.per_record_fallback()) ++adapter_batches;
      if (ctx_.cancelled()) {
        return ctx_.exec->CheckCancelled("sort-scan scan");
      }

      const uint32_t* zone_min = nullptr;
      const uint32_t* zone_max = nullptr;
      const uint32_t* const* code_cols = nullptr;
      if (vectorized) {
        cols.BeginBatch(cur, cur_rows);
        std::fill(pass_runs_ready.begin(), pass_runs_ready.end(), 0);
        for (int i = 0; i < d_; ++i) dim_ptrs[i] = cur.dim_col(i);
        for (int i = 0; i < m; ++i) measure_ptrs[i] = cur.measure_col(i);
        code_cols = cur.code_cols();
        if (any_dict_kernel && code_cols != nullptr) {
          cur.CodeZones(&zone_min, &zone_max);
        }
      } else {
        cols.Apply(cur, cur_rows);
      }

      // Feed the batch to every scan-side node. The stream is sorted, so
      // generalized keys arrive in runs; reusing the entry while the key
      // repeats skips most of the map probes.
      for (size_t s = 0; s < scan_nodes_.size(); ++s) {
        NodeRt& node = *nodes_[scan_nodes_[s]];
        const int pass = node_pass[s];
        const double* arg_col =
            node.agg.arg >= 0 ? cur.measure_col(node.agg.arg) : nullptr;
        if (vectorized) {
          // Filter first: compiled kernel (with a zone-map verdict when
          // dictionary-bound — a provably-false batch is skipped before
          // any generalize or run-detection work), interpreter fallback,
          // or the whole batch when the node has no where-filter.
          const uint32_t* sv = iota.data();
          size_t sel_n = cur_rows;
          if (node.has_where) {
            sv = sel.data();
            if (node.where_kernel.has_value()) {
              BatchVerdict verdict = BatchVerdict::kUnknown;
              if (zone_min != nullptr &&
                  node.where_kernel->dict_bound() > 0) {
                verdict =
                    node.where_kernel->JudgeBatch(zone_min, zone_max);
              }
              if (verdict == BatchVerdict::kAllFalse) {
                ++batches_skipped;
                continue;
              }
              if (verdict == BatchVerdict::kAllTrue) {
                sv = iota.data();
                sel_n = cur_rows;
              } else {
                sel_n = node.where_kernel->Select(
                    dim_ptrs.data(), measure_ptrs.data(), cur_rows,
                    sel.data(), code_cols);
              }
            } else {
              sel_n = 0;
              for (size_t r = 0; r < cur_rows; ++r) {
                for (int i = 0; i < d_; ++i) {
                  slots[i] = static_cast<double>(cur.dim_col(i)[r]);
                }
                for (int i = 0; i < m; ++i) {
                  slots[d_ + i] = cur.measure_col(i)[r];
                }
                if (node.where.EvalBool(slots.data())) {
                  sel[sel_n++] = static_cast<uint32_t>(r);
                }
              }
            }
          }

          if (sel_n == 0) continue;  // nothing survived the filter

          // Run detection, shared by every node at this pass: flag the
          // rows where any generalized key column changes, then prefix-
          // count the flags into run ids. Materialized after the filter
          // so a skipped batch pays for neither.
          cols.EnsurePass(pass);
          if (!pass_runs_ready[pass]) {
            pass_runs_ready[pass] = 1;
            std::fill(run_boundary.begin(),
                      run_boundary.begin() + cur_rows, 0);
            for (int i = 0; i < d_; ++i) {
              const Value* c = cols.col(pass, i);
              for (size_t r = 1; r < cur_rows; ++r) {
                run_boundary[r] |= (c[r] != c[r - 1]) ? 1 : 0;
              }
            }
            uint32_t* rid = run_ids[pass].data();
            uint32_t acc = 0;
            rid[0] = 0;
            for (size_t r = 1; r < cur_rows; ++r) {
              acc += run_boundary[r];
              rid[r] = acc;
            }
          }
          const uint32_t* rid = run_ids[pass].data();

          // Fold run by run: one Touch per run (same probe sequence as
          // the scalar loop — a run *is* a maximal stretch of equal
          // keys), with register-local partials for the kinds whose
          // fold order provably cannot change the state bits (count:
          // exact integer adds; min/max: exact comparisons with the
          // same first-tie-wins order; none: no-op updates). Everything
          // else replays per-row AggUpdate through the cached entry.
          NodeEntry* entry = nullptr;
          uint32_t prev_rid = 0;
          size_t i0 = 0;
          while (i0 < sel_n) {
            const uint32_t r0 = sv[i0];
            const uint32_t run = rid[r0];
            size_t i1 = i0 + 1;
            while (i1 < sel_n && rid[sv[i1]] == run) ++i1;
            if (entry == nullptr || run != prev_rid) {
              for (int i = 0; i < d_; ++i) {
                gen_key[i] = cols.col(pass, i)[r0];
              }
              entry = &Touch(node, gen_key.data(), &map_key);
              prev_rid = run;
            }
            switch (node.agg.kind) {
              case AggKind::kNone:
                break;  // enumerator: Touch alone records the region
              case AggKind::kCount: {
                double cnt;
                if (arg_col == nullptr) {
                  cnt = static_cast<double>(i1 - i0);
                } else {
                  cnt = 0;
                  for (size_t j = i0; j < i1; ++j) {
                    const double v = arg_col[sv[j]];
                    if (!(v != v)) cnt += 1;
                  }
                }
                entry->state.a += cnt;
                break;
              }
              case AggKind::kMin: {
                double local = kNaN;
                for (size_t j = i0; j < i1; ++j) {
                  const double v =
                      arg_col != nullptr ? arg_col[sv[j]] : 1.0;
                  if (!(v != v) && ((local != local) || v < local)) {
                    local = v;
                  }
                }
                double& a = entry->state.a;
                if (!(local != local) && ((a != a) || local < a)) {
                  a = local;
                }
                break;
              }
              case AggKind::kMax: {
                double local = kNaN;
                for (size_t j = i0; j < i1; ++j) {
                  const double v =
                      arg_col != nullptr ? arg_col[sv[j]] : 1.0;
                  if (!(v != v) && ((local != local) || v > local)) {
                    local = v;
                  }
                }
                double& a = entry->state.a;
                if (!(local != local) && ((a != a) || local > a)) {
                  a = local;
                }
                break;
              }
              default:
                for (size_t j = i0; j < i1; ++j) {
                  AggUpdate(node.agg.kind, &entry->state,
                            arg_col != nullptr ? arg_col[sv[j]] : 1.0);
                }
            }
            i0 = i1;
          }
          continue;
        }
        NodeEntry* entry = nullptr;
        for (size_t r = 0; r < cur_rows; ++r) {
          if (node.has_where) {
            for (int i = 0; i < d_; ++i) {
              slots[i] = static_cast<double>(cur.dim_col(i)[r]);
            }
            for (int i = 0; i < m; ++i) {
              slots[d_ + i] = cur.measure_col(i)[r];
            }
            if (!node.where.EvalBool(slots.data())) continue;
          }
          for (int i = 0; i < d_; ++i) gen_key[i] = cols.col(pass, i)[r];
          if (entry == nullptr || gen_key != prev_key) {
            entry = &Touch(node, gen_key.data(), &map_key);
            prev_key = gen_key;
          }
          AggUpdate(node.agg.kind, &entry->state,
                    arg_col != nullptr ? arg_col[r] : 1.0);
        }
      }

      rows += cur_rows;
      rows_since_prop += cur_rows;
      if (rows_since_prop >= prop_batch && next_rows > 0) {
        rows_since_prop = 0;
        SampleMemory();
        for (int i = 0; i < d_; ++i) frontier[i] = next.dim_col(i)[0];
        CSM_RETURN_NOT_OK(Propagate(frontier.data()));
      }
      std::swap(cur, next);
      cur_rows = next_rows;
    }
    SampleMemory();
    CSM_RETURN_NOT_OK(Propagate(nullptr));  // close all streams

    // Flush the locally tracked high-water marks to the span: sampling
    // runs per propagation batch, so it must not touch the tracer mutex.
    tracer.AddCounter(scan_span.id(), "rows_scanned",
                      static_cast<double>(rows));
    tracer.AddCounter(scan_span.id(), "batches",
                      static_cast<double>(batches));
    tracer.AddCounter(scan_span.id(), "adapter_batches",
                      static_cast<double>(adapter_batches));
    tracer.SetAttr(scan_span.id(), "batch_rows", std::to_string(cap));
    tracer.SetAttr(scan_span.id(), "vectorized",
                   vectorized ? "on" : "off");
    tracer.SetAttr(scan_span.id(), "dict", dict != nullptr ? "on" : "off");
    tracer.AddCounter(scan_span.id(), "batches_skipped",
                      static_cast<double>(batches_skipped));
    if (dict != nullptr) {
      tracer.AddCounter(scan_span.id(), "dict_luts",
                        static_cast<double>(dict->num_luts));
      tracer.AddCounter(scan_span.id(), "dict_bits",
                        static_cast<double>(dict_bits));
    }
    tracer.AddCounter(scan_span.id(), "materialized_rows",
                      static_cast<double>(rows_flushed_));
    tracer.SetGaugeMax(scan_span.id(), "peak_hash_entries",
                       static_cast<double>(peak_entries_));
    tracer.SetGaugeMax(scan_span.id(), "peak_hash_bytes",
                       static_cast<double>(peak_bytes_));
    for (size_t i = 0; i < nodes_.size(); ++i) {
      tracer.SetGaugeMax(scan_span.id(),
                         "hash_entries_hw/" + nodes_[i]->name,
                         static_cast<double>(node_peak_entries_[i]));
    }
    const double seconds = scan_timer.Seconds();
    if (seconds > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f",
                    static_cast<double>(rows) / seconds);
      tracer.SetAttr(scan_span.id(), "rows_per_sec", buf);
    }
    return Status::OK();
  }

  // ---- Graph construction -------------------------------------------------

  Status BuildGraph() {
    std::unordered_map<std::string, int> node_by_name;
    std::map<std::vector<int>, int> enum_by_gran;

    auto add_node = [&](std::unique_ptr<NodeRt> node) {
      nodes_.push_back(std::move(node));
      return static_cast<int>(nodes_.size() - 1);
    };
    auto add_edge = [&](EdgeRt edge) {
      const int idx = static_cast<int>(edges_.size());
      nodes_[edge.producer]->out_edges.push_back(idx);
      nodes_[edge.consumer]->in_edges.push_back(idx);
      if (edge.kind == ArcKind::kParentChild) {
        edge.parent_values =
            FlatKeyMap<double>(edge.producer_pos.len() + d_);
      }
      edges_.push_back(std::move(edge));
      return idx;
    };
    auto ensure_enum = [&](const Granularity& gran) {
      auto it = enum_by_gran.find(gran.levels());
      if (it != enum_by_gran.end()) return it->second;
      auto node = std::make_unique<NodeRt>();
      node->kind = NodeKind::kEnum;
      node->name = "__regions" + gran.ToString(schema_);
      node->gran = gran;
      node->agg = AggSpec{AggKind::kNone, -1};
      node->pos = PosCalc(schema_, sort_key_, gran);
      node->entries = FlatKeyMap<NodeEntry>(node->pos.len() + d_);
      int idx = add_node(std::move(node));
      scan_nodes_.push_back(idx);
      enum_by_gran[gran.levels()] = idx;
      return idx;
    };

    for (const MeasureDef& def : workflow_.measures()) {
      auto node = std::make_unique<NodeRt>();
      node->name = def.name;
      node->gran = def.gran;
      node->agg = def.agg;
      if (node->agg.arg > 0 && def.op != MeasureOp::kBaseAgg) {
        node->agg.arg = 0;
      }
      node->match = def.match;
      node->pos = PosCalc(schema_, sort_key_, def.gran);
      node->entries = FlatKeyMap<NodeEntry>(node->pos.len() + d_);
      node->keep_output = def.is_output || options_.include_hidden;

      switch (def.op) {
        case MeasureOp::kBaseAgg: {
          node->kind = NodeKind::kBase;
          if (def.where != nullptr) {
            CSM_ASSIGN_OR_RETURN(
                node->where,
                BoundExpr::Bind(*def.where, FactRowVars(schema_)));
            node->has_where = true;
            if (options_.vectorized) {
              node->where_kernel = PredicateKernel::Compile(
                  *def.where, FactRowVars(schema_), d_);
            }
          }
          break;
        }
        case MeasureOp::kRollup:
        case MeasureOp::kMatch: {
          node->kind = def.op == MeasureOp::kRollup ? NodeKind::kRollup
                                                    : NodeKind::kMatch;
          break;
        }
        case MeasureOp::kCombine: {
          node->kind = NodeKind::kCombine;
          node->n_slots = def.combine_inputs.size();
          std::vector<std::string> names;
          for (const std::string& input : def.combine_inputs) {
            CSM_ASSIGN_OR_RETURN(const MeasureDef* in,
                                 workflow_.Find(input));
            names.push_back(in->name);
          }
          CSM_ASSIGN_OR_RETURN(
              node->fc,
              BoundExpr::Bind(*def.fc, CombineVars(schema_, names)));
          break;
        }
      }
      if (node->keep_output) {
        node->output = std::make_unique<MeasureTable>(schema_ptr_,
                                                      def.gran, def.name);
      }
      // The region enumerator must precede the match node in the
      // topological node order, so create it first.
      int enum_idx = -1;
      if (def.op == MeasureOp::kMatch) enum_idx = ensure_enum(def.gran);
      const int node_idx = add_node(std::move(node));
      node_by_name[def.name] = node_idx;
      if (def.op == MeasureOp::kBaseAgg) scan_nodes_.push_back(node_idx);

      // Wire the computational arcs.
      auto make_edge = [&](int producer, ArcKind kind,
                           int slot) -> Result<EdgeRt> {
        EdgeRt edge;
        edge.producer = producer;
        edge.consumer = node_idx;
        edge.kind = kind;
        edge.slot = slot;
        edge.producer_pos = nodes_[producer]->pos;
        if (def.where != nullptr && kind != ArcKind::kExists) {
          CSM_ASSIGN_OR_RETURN(
              edge.filter,
              BoundExpr::Bind(*def.where,
                              MeasureRowVars(schema_,
                                             nodes_[producer]->name)));
          edge.has_filter = true;
        }
        return edge;
      };

      switch (def.op) {
        case MeasureOp::kBaseAgg:
          break;
        case MeasureOp::kRollup: {
          const int producer = node_by_name.at(
              ToLowerName(def.input, node_by_name));
          CSM_ASSIGN_OR_RETURN(EdgeRt edge,
                               make_edge(producer, ArcKind::kRollup, 0));
          add_edge(std::move(edge));
          break;
        }
        case MeasureOp::kMatch: {
          EdgeRt exists;
          exists.producer = enum_idx;
          exists.consumer = node_idx;
          exists.kind = ArcKind::kExists;
          exists.producer_pos = nodes_[enum_idx]->pos;
          add_edge(std::move(exists));

          const int producer = node_by_name.at(
              ToLowerName(def.input, node_by_name));
          ArcKind kind = ArcKind::kSelf;
          switch (def.match.type) {
            case MatchType::kSelf:
              kind = ArcKind::kSelf;
              break;
            case MatchType::kChildParent:
              kind = ArcKind::kRollup;
              break;
            case MatchType::kParentChild:
              kind = ArcKind::kParentChild;
              break;
            case MatchType::kSibling:
              kind = ArcKind::kSibling;
              break;
          }
          CSM_ASSIGN_OR_RETURN(EdgeRt edge, make_edge(producer, kind, 0));
          if (kind == ArcKind::kSibling) {
            // Per producer-pos component: how far back the window reach
            // extends in sort-key units. Exact for stepped hierarchies;
            // conservative (the raw window bound) otherwise.
            const PosCalc& ppos = nodes_[producer]->pos;
            edge.sibling_shift.assign(ppos.len(), 0);
            for (const SiblingWindow& w : def.match.windows) {
              for (size_t i = 0; i < ppos.len(); ++i) {
                if (ppos.part_dim(i) != w.dim) continue;
                const int64_t hi = std::max<int64_t>(0, w.hi);
                if (hi == 0) continue;
                const Hierarchy& h = *schema_.dim(w.dim).hierarchy;
                uint64_t div = h.ExactDivisor(ppos.part_from(i),
                                              ppos.part_to(i));
                edge.sibling_shift[i] =
                    div > 0 ? (hi + static_cast<int64_t>(div) - 1) /
                                  static_cast<int64_t>(div)
                            : hi;
              }
            }
          }
          add_edge(std::move(edge));
          break;
        }
        case MeasureOp::kCombine: {
          for (size_t i = 0; i < def.combine_inputs.size(); ++i) {
            const int producer = node_by_name.at(
                ToLowerName(def.combine_inputs[i], node_by_name));
            EdgeRt edge;
            edge.producer = producer;
            edge.consumer = node_idx;
            edge.kind = ArcKind::kCombineSlot;
            edge.slot = static_cast<int>(i);
            edge.producer_pos = nodes_[producer]->pos;
            add_edge(std::move(edge));
          }
          break;
        }
      }
    }
    return Status::OK();
  }

  // Workflow names are case-insensitive; node_by_name stores the exact
  // names, so resolve by scanning (graphs are small).
  static std::string ToLowerName(
      const std::string& name,
      const std::unordered_map<std::string, int>& table) {
    if (table.count(name)) return name;
    std::string lower = ToLower(name);
    for (const auto& [key, idx] : table) {
      if (ToLower(key) == lower) return key;
    }
    return name;  // will throw at() — caught by workflow validation first
  }

  // ---- Scan-side entry maintenance ---------------------------------------

  NodeEntry& Touch(NodeRt& node, const Value* key,
                   std::vector<Value>* map_key) {
    node.pos.Compute(schema_, key, map_key);
    map_key->insert(map_key->end(), key, key + d_);
    bool inserted = false;
    NodeEntry& entry = node.entries.FindOrInsert(map_key->data(),
                                                 &inserted);
    if (inserted) {
      AggInit(node.agg.kind, &entry.state);
      if (node.kind == NodeKind::kCombine) {
        entry.slots.assign(node.n_slots, kNaN);
      }
      node.min_pos.Observe(map_key->data(), node.pos.len());
    }
    return entry;
  }

  // ---- Watermark propagation ----------------------------------------------

  /// One propagation round: recomputes every node's watermark (in
  /// topological order — nodes_ is topologically ordered by
  /// construction), pops finalized entries, emits them downstream, and
  /// advances the edge frontiers. `next_dims` is the next unscanned fact
  /// record, or nullptr at end of input.
  Status Propagate(const Value* next_dims) {
    RegionKey gen_key(d_);
    const Granularity base_gran = Granularity::Base(schema_);
    std::vector<double> filter_slots(d_ + 2);

    for (size_t node_idx = 0; node_idx < nodes_.size(); ++node_idx) {
      NodeRt& node = *nodes_[node_idx];

      // -- Watermark.
      if (node.kind == NodeKind::kBase || node.kind == NodeKind::kEnum) {
        if (next_dims == nullptr) {
          node.watermark.closed = true;
        } else {
          GeneralizeKeyInto(schema_, next_dims, base_gran, node.gran,
                            &gen_key);
          node.pos.Compute(schema_, gen_key.data(), &node.watermark.vals);
          node.watermark.closed = false;
        }
      } else {
        Frontier wm;
        wm.closed = true;
        for (int e : node.in_edges) {
          wm = LowerOf(wm, edges_[e].frontier);
        }
        node.watermark = wm;
      }

      // -- Pop finalized entries. The flush is sorted by map key so
      // downstream updates arrive in the same lexicographic (pos ++ key)
      // order the engine emitted with ordered maps — float accumulation
      // order, and thus results, stay bit-identical.
      // Emissions live in flat member buffers (keys packed d_ at a time)
      // so a million finalized regions cost zero per-region allocations.
      emit_keys_.clear();
      emit_vals_.clear();
      const size_t pos_len = node.pos.len();
      // Most rounds finalize nothing on most nodes (the watermark only
      // crosses a position boundary every so often); the minimum-position
      // bound proves that without touching the table.
      if (node.min_pos.MayFlush(pos_len, node.watermark)) {
        MinPos survivors_min;
        node.entries.FlushIf(
            [&](const Value* map_key, const NodeEntry&) {
              if (StrictlyBefore(map_key, pos_len, node.watermark)) {
                return true;
              }
              survivors_min.Observe(map_key, pos_len);
              return false;
            },
            [&](const Value* map_key, NodeEntry&& entry) {
              const Value* rkey = map_key + pos_len;
              bool emit = true;
              double value = 0;
              switch (node.kind) {
                case NodeKind::kBase:
                case NodeKind::kEnum:
                case NodeKind::kRollup:
                  value = AggFinalize(node.agg.kind, entry.state);
                  break;
                case NodeKind::kMatch: {
                  if (!entry.exists) {
                    emit = false;
                    break;
                  }
                  if (node.match.type == MatchType::kParentChild) {
                    value = FoldParent(node, rkey);
                  } else {
                    value = AggFinalize(node.agg.kind, entry.state);
                  }
                  break;
                }
                case NodeKind::kCombine: {
                  if (!entry.exists) {
                    emit = false;
                    break;
                  }
                  combine_slots_.resize(d_ + node.n_slots);
                  for (int i = 0; i < d_; ++i) {
                    combine_slots_[i] = static_cast<double>(rkey[i]);
                  }
                  for (size_t i = 0; i < node.n_slots; ++i) {
                    combine_slots_[d_ + i] = entry.slots[i];
                  }
                  value = node.fc.Eval(combine_slots_.data());
                  break;
                }
              }
              if (emit) {
                emit_keys_.insert(emit_keys_.end(), rkey, rkey + d_);
                emit_vals_.push_back(value);
              }
            },
            /*sorted_by_key=*/true);
        node.min_pos = std::move(survivors_min);
      }

      // -- Keep output rows.
      const size_t n_emit = emit_vals_.size();
      if (node.keep_output) {
        for (size_t i = 0; i < n_emit; ++i) {
          node.output->Append(&emit_keys_[i * d_], emit_vals_[i]);
        }
      }
      rows_flushed_ += n_emit;

      // -- Push downstream and advance edge frontiers.
      for (int e : node.out_edges) {
        EdgeRt& edge = edges_[e];
        NodeRt& consumer = *nodes_[edge.consumer];
        for (size_t i = 0; i < n_emit; ++i) {
          const Value* key = &emit_keys_[i * d_];
          const double value = emit_vals_[i];
          if (edge.has_filter) {
            for (int j = 0; j < d_; ++j) {
              filter_slots[j] = static_cast<double>(key[j]);
            }
            filter_slots[d_] = filter_slots[d_ + 1] = value;
            if (!edge.filter.EvalBool(filter_slots.data())) continue;
          }
          CSM_RETURN_NOT_OK(ApplyUpdate(edge, consumer, key, value));
        }
        edge.frontier = TransformFrontier(node.watermark, edge);
      }

      // -- Evict parent buffers that no future child can reference: a
      // parent is dead once the node's watermark, re-levelled to the
      // parent granularity, strictly passes it.
      for (int e : node.in_edges) {
        EdgeRt& edge = edges_[e];
        if (edge.kind != ArcKind::kParentChild) continue;
        const Frontier parent_wm =
            ConvertFrontier(node.watermark, node.pos, edge.producer_pos);
        const size_t plen = edge.producer_pos.len();
        if (!edge.min_pos.MayFlush(plen, parent_wm)) continue;
        MinPos survivors_min;
        edge.parent_values.FlushIf(
            [&](const Value* map_key, const double&) {
              if (StrictlyBefore(map_key, plen, parent_wm)) return true;
              survivors_min.Observe(map_key, plen);
              return false;
            },
            [](const Value*, double&&) {});
        edge.min_pos = std::move(survivors_min);
      }
    }
    return Status::OK();
  }

  double FoldParent(NodeRt& node, const Value* rkey) {
    // Locate this node's parent/child arc.
    AggState state;
    AggInit(node.agg.kind, &state);
    for (int e : node.in_edges) {
      EdgeRt& edge = edges_[e];
      if (edge.kind != ArcKind::kParentChild) continue;
      const NodeRt& producer = *nodes_[edge.producer];
      fold_pkey_.resize(d_);
      RegionKey& pkey = fold_pkey_;
      GeneralizeKeyInto(schema_, rkey, node.gran, producer.gran, &pkey);
      std::vector<Value>& map_key = fold_key_;
      edge.producer_pos.Compute(schema_, pkey.data(), &map_key);
      map_key.insert(map_key.end(), pkey.begin(), pkey.end());
      const double* parent = edge.parent_values.Find(map_key.data());
      if (parent != nullptr) {
        // count(*) counts the matched parent even when its value is NULL.
        AggUpdate(node.agg.kind, &state,
                  node.agg.arg >= 0 ? *parent : 1.0);
      }
    }
    return AggFinalize(node.agg.kind, state);
  }

  Status ApplyUpdate(EdgeRt& edge, NodeRt& consumer, const Value* key,
                     double value) {
    std::vector<Value>& map_key = apply_key_;
    switch (edge.kind) {
      case ArcKind::kExists: {
        NodeEntry& entry = Touch(consumer, key, &map_key);
        entry.exists = true;
        break;
      }
      case ArcKind::kSelf: {
        NodeEntry& entry = Touch(consumer, key, &map_key);
        AggUpdate(consumer.agg.kind, &entry.state,
                  consumer.agg.arg >= 0 ? value : 1.0);
        break;
      }
      case ArcKind::kRollup: {
        apply_up_.resize(d_);
        GeneralizeKeyInto(schema_, key, nodes_[edge.producer]->gran,
                          consumer.gran, &apply_up_);
        NodeEntry& entry = Touch(consumer, apply_up_.data(), &map_key);
        AggUpdate(consumer.agg.kind, &entry.state,
                  consumer.agg.arg >= 0 ? value : 1.0);
        if (consumer.kind == NodeKind::kRollup) entry.exists = true;
        break;
      }
      case ArcKind::kParentChild: {
        edge.producer_pos.Compute(schema_, key, &map_key);
        map_key.insert(map_key.end(), key, key + d_);
        bool inserted = false;
        edge.parent_values.FindOrInsert(map_key.data(), &inserted) =
            value;
        if (inserted) {
          edge.min_pos.Observe(map_key.data(), edge.producer_pos.len());
        }
        break;
      }
      case ArcKind::kSibling: {
        // Fan the value out to every region whose window covers this key.
        RegionKey skey(key, key + d_);
        const auto& windows = consumer.match.windows;
        std::vector<int64_t> offset(windows.size());
        for (size_t i = 0; i < windows.size(); ++i) {
          offset[i] = windows[i].lo;
        }
        for (;;) {
          bool valid = true;
          for (size_t i = 0; i < windows.size(); ++i) {
            const int64_t v =
                static_cast<int64_t>(key[windows[i].dim]) - offset[i];
            if (v < 0) {
              valid = false;
              break;
            }
            skey[windows[i].dim] = static_cast<Value>(v);
          }
          if (valid) {
            NodeEntry& entry = Touch(consumer, skey.data(), &map_key);
            AggUpdate(consumer.agg.kind, &entry.state,
                      consumer.agg.arg >= 0 ? value : 1.0);
          }
          size_t i = 0;
          for (; i < windows.size(); ++i) {
            if (++offset[i] <= windows[i].hi) break;
            offset[i] = windows[i].lo;
          }
          if (i == windows.size()) break;
        }
        break;
      }
      case ArcKind::kCombineSlot: {
        NodeEntry& entry = Touch(consumer, key, &map_key);
        entry.slots[edge.slot] = value;
        if (edge.slot == 0) entry.exists = true;
        break;
      }
    }
    return Status::OK();
  }

  /// Re-levels a frontier expressed at `from`'s component levels into
  /// `to`'s component levels (both follow the same sort-key dimension
  /// sequence, so components align). This is the order/slack coarsening of
  /// Table 6 in frontier form:
  ///  - equal levels pass through;
  ///  - a component where `to` is coarser is generalized and the frontier
  ///    *truncates* there (values beyond it are no longer lex-bounded);
  ///  - a component where `to` is finer multiplies by the exact block
  ///    size (first fine value of the coarse bound) and may continue;
  ///    with an irregular hierarchy the exact size is unknown and the
  ///    frontier conservatively truncates before the component.
  Frontier ConvertFrontier(const Frontier& f, const PosCalc& from,
                           const PosCalc& to) const {
    Frontier out;
    out.closed = f.closed;
    if (f.closed) return out;
    const size_t n = std::min({f.vals.size(), from.len(), to.len()});
    for (size_t i = 0; i < n; ++i) {
      const int dim = from.part_dim(i);
      CSM_DCHECK(dim == to.part_dim(i));
      const int fl = from.part_to(i);
      const int tl = to.part_to(i);
      const Hierarchy& h = *schema_.dim(dim).hierarchy;
      if (fl == tl) {
        out.vals.push_back(f.vals[i]);
        continue;
      }
      if (fl < tl) {  // coarsening: generalize, then stop
        out.vals.push_back(h.Generalize(f.vals[i], fl, tl));
        break;
      }
      // Refining: need the exact block size to place the bound.
      const uint64_t div = h.ExactDivisor(tl, fl);
      if (div == 0) break;
      out.vals.push_back(f.vals[i] * div);
    }
    return out;
  }

  Frontier TransformFrontier(const Frontier& wm, const EdgeRt& edge) const {
    Frontier f = wm;
    if (f.closed) return f;
    if (edge.kind == ArcKind::kSibling) {
      // Slack of a trailing window: the stream of updates lags the
      // producer by up to the window reach, so pull the bound back. A
      // component that would go negative provides no bound at all — the
      // frontier truncates there (clamping to 0 would wrongly *raise*
      // the bound and finalize entries that can still receive updates).
      const size_t n = std::min(f.vals.size(),
                                edge.sibling_shift.size());
      for (size_t i = 0; i < n; ++i) {
        const Value shift = static_cast<Value>(edge.sibling_shift[i]);
        if (f.vals[i] < shift) {
          f.vals.resize(i);
          break;
        }
        f.vals[i] -= shift;
      }
    }
    return ConvertFrontier(f, edge.producer_pos,
                           nodes_[edge.consumer]->pos);
  }

  /// Tracks high-water marks in plain members — called once per
  /// propagation batch, so it stays off the tracer mutex; the peaks are
  /// flushed to the scan span once at end of scan.
  void SampleMemory() {
    uint64_t entries = 0;
    uint64_t bytes = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const auto& node = nodes_[i];
      node_peak_entries_[i] =
          std::max<uint64_t>(node_peak_entries_[i], node->entries.size());
      entries += node->entries.size();
      bytes += node->entries.MemoryBytes() +
               node->entries.size() * node->n_slots * sizeof(double);
      // Only holistic aggregates carry per-entry heap state; walking the
      // entries of every node per sample would make sampling O(footprint)
      // and dominate badly-ordered runs.
      if (node->agg.kind == AggKind::kCountDistinct) {
        node->entries.ForEach([&](const Value*, const NodeEntry& entry) {
          if (entry.state.distinct) {
            bytes += entry.state.distinct->size() * 16;
          }
        });
      }
    }
    for (const auto& edge : edges_) {
      entries += edge.parent_values.size();
      bytes += edge.parent_values.MemoryBytes();
    }
    peak_entries_ = std::max(peak_entries_, entries);
    peak_bytes_ = std::max(peak_bytes_, bytes);
  }

  PlanContext& ctx_;
  const Workflow& workflow_;
  const EngineOptions& options_;
  SchemaPtr schema_ptr_;
  const Schema& schema_;
  const int d_;
  SortKey sort_key_;

  std::vector<std::unique_ptr<NodeRt>> nodes_;  // topological order
  std::vector<EdgeRt> edges_;
  std::vector<int> scan_nodes_;  // kBase / kEnum, fed by the scan
  uint64_t rows_flushed_ = 0;
  uint64_t peak_entries_ = 0;
  uint64_t peak_bytes_ = 0;
  std::vector<uint64_t> node_peak_entries_;
  std::vector<double> combine_slots_;

  // Propagation scratch, reused across rounds: flat emission buffers
  // (keys packed d_ values at a time, value i at emit_vals_[i]) and the
  // key-building temporaries for ApplyUpdate / FoldParent. Keeping them
  // as members removes every per-emission heap allocation from the
  // finalize/push-downstream hot path.
  std::vector<Value> emit_keys_;
  std::vector<double> emit_vals_;
  std::vector<Value> apply_key_;
  RegionKey apply_up_;
  RegionKey fold_pkey_;
  std::vector<Value> fold_key_;
};

}  // namespace

std::string PropagateOp::Describe(const Schema&) const {
  return "watermark-coordinated one-pass scan: finalize entries below "
         "the frontier, stream them to dependent measures; " +
         vec_.Summary() +
         (vec_.enabled ? ", run-detected sorted probes" : "");
}

Status PropagateOp::Run(PlanContext& ctx) {
  CSM_CHECK(ctx.cursor != nullptr)
      << "the propagate stage needs the scan stage's record stream";
  CSM_CHECK(ctx.generalize != nullptr)
      << "plan is missing the generalize stage";
  auto impl = std::make_unique<PropagateImpl>(ctx);
  CSM_RETURN_NOT_OK(impl->Run());
  // Collecting the outputs AND tearing down the graph's runtime state
  // (per-node entry maps) is combine-phase work; scoping both under the
  // span keeps the phase spans covering the whole run.
  ScopedSpan combine_span(&ctx.tracer(), "combine", ctx.root());
  CSM_RETURN_NOT_OK(impl->Collect());
  impl.reset();
  return Status::OK();
}

}  // namespace csm
