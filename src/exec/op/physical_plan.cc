#include "exec/op/physical_plan.h"

#include <cstdio>

#include "exec/scheduler.h"

namespace csm {

std::string PhysicalPlan::Describe(const Schema& schema) const {
  std::string text = "plan: " + engine + "\n";
  text += "  order: " +
          (sort_key.empty() ? std::string("(unsorted)")
                            : sort_key.ToString(schema)) +
          "\n";
  const int pool_workers = ThreadPool::Global().workers();
  const int executors = threads > 0
                            ? std::min(threads, pool_workers + 1)
                            : pool_workers + 1;
  char line[160];
  std::snprintf(line, sizeof(line),
                "  threads: up to %d (pool %d workers + caller) | "
                "morsel_rows: %zu | batch_rows: %zu | dict: %s\n",
                executors, pool_workers, morsel_rows, scan_batch_rows,
                dict_encoding ? "on" : "off");
  text += line;
  int idx = 1;
  for (const auto& op : ops) {
    std::snprintf(line, sizeof(line), "  %d. %-10s ", idx++,
                  std::string(op->name()).c_str());
    text += line;
    text += op->Describe(schema);
    text += "\n";
  }
  return text;
}

Result<EvalOutput> PhysicalPlan::Execute(const Workflow& workflow,
                                         const FactTable& fact,
                                         ExecContext& ctx) {
  return Drive(workflow, &fact, nullptr, ctx);
}

Result<EvalOutput> PhysicalPlan::ExecuteFile(const Workflow& workflow,
                                             const std::string& fact_path,
                                             ExecContext& ctx) {
  return Drive(workflow, nullptr, &fact_path, ctx);
}

Result<EvalOutput> PhysicalPlan::Drive(const Workflow& workflow,
                                       const FactTable* fact,
                                       const std::string* fact_path,
                                       ExecContext& ctx) {
  // Touch the pool before the root span opens: first use spawns the
  // resident workers, a process-wide one-time cost that must not be
  // attributed to this run's wall time.
  ThreadPool& pool = ThreadPool::Global();

  RunScope rs(ctx, engine);
  EvalOutput out;

  PlanContext pctx;
  pctx.workflow = &workflow;
  pctx.fact = fact;
  pctx.fact_path = fact_path;
  pctx.exec = &ctx;
  pctx.scope = &rs;
  pctx.pool = &pool;
  pctx.plan = this;
  pctx.out = &out;
  pctx.engine_state = engine_state;

  const Schema& schema = *workflow.schema();
  // Default root attribution; engine-specific merge/emit operators
  // overwrite it with richer labels (shard counts, pass lists, adaptive
  // choice prefixes).
  rs.tracer().SetAttr(rs.root(), "sort_key",
                      sort_key.empty() ? "(unsorted)"
                                       : sort_key.ToString(schema));

  for (const auto& op : ops) {
    CSM_RETURN_NOT_OK(op->Run(pctx));
  }

  out.stats = rs.Finish();
  return out;
}

}  // namespace csm
