#ifndef CSM_EXEC_OP_GENERALIZE_OP_H_
#define CSM_EXEC_OP_GENERALIZE_OP_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/op/op.h"
#include "expr/predicate_kernel.h"
#include "model/granularity.h"
#include "storage/dim_dictionary.h"
#include "storage/record_batch.h"

namespace csm {

/// Plan-wide dictionary artifacts, built once per plan by GeneralizeOp
/// and published as PlanContext::dict: per-(pass, dim) code→value LUTs
/// that replace the per-batch GeneralizeColumns hierarchy sweep with one
/// gather per column, plus per-dimension dictionary views for compiling
/// filter predicates to bitsets. LUT entries are produced by the same
/// Hierarchy::GeneralizeColumn call the raw sweep runs per batch, so
/// downstream results are bit-identical by construction.
struct DictPlan {
  const FactTable* table = nullptr;
  const DictEncoding* enc = nullptr;
  // luts[pass][dim]: code -> generalized value at the pass granularity.
  std::vector<std::vector<std::vector<Value>>> luts;
  size_t num_luts = 0;      // passes × dims LUTs materialized
  size_t lut_entries = 0;   // total Value entries across all LUTs
  std::vector<DictColumnView> views;  // [dim], for kernel binding
};

/// The one shared implementation of the per-batch `GeneralizeColumns`
/// sweep bookkeeping every engine used to duplicate: scan consumers that
/// share a granularity share one generalized key-column pass per batch —
/// one hierarchy sweep per dimension per *distinct* granularity instead
/// of one γ call per consumer per record.
///
/// The spec (distinct granularities, pass assignment) is immutable after
/// construction; per-scan column buffers live in a Columns instance, so
/// every scheduler executor materializes its own and the sweep is safe
/// to run morsel-parallel.
class GranularitySweep {
 public:
  explicit GranularitySweep(SchemaPtr schema)
      : schema_(std::move(schema)) {}

  /// Registers a consumer granularity, deduplicating identical ones.
  /// Returns the pass index consumers use to find their columns.
  int AddGranularity(const Granularity& gran);

  /// Pass index of `gran`, or -1 when it was never registered.
  int PassOf(const Granularity& gran) const;

  size_t num_passes() const { return grans_.size(); }
  const Granularity& gran(int pass) const { return grans_[pass]; }
  const Schema& schema() const { return *schema_; }

  /// Per-scan working buffers: one generalized column set per pass.
  /// Materialization is lazy per pass (BeginBatch + EnsurePass), so a
  /// consumer whose batch is skipped by a zone map never pays for the
  /// sweep; Apply keeps the eager all-passes behavior for scalar paths.
  /// With a DictPlan attached, a pass is one LUT gather per dimension
  /// over the batch's code views instead of a hierarchy sweep.
  class Columns {
   public:
    Columns(const GranularitySweep* spec, size_t capacity,
            const DictPlan* dict);

    /// Rolls rows [0, n) of `batch`'s dimension columns up to every
    /// registered granularity — BeginBatch + EnsurePass for all passes.
    void Apply(const RecordBatch& batch, size_t n);

    /// Starts a new batch without materializing any pass.
    void BeginBatch(const RecordBatch& batch, size_t n);

    /// Materializes pass `pass` for the current batch (idempotent).
    void EnsurePass(int pass);

    /// Generalized values of dimension `dim` for pass `pass` (valid for
    /// the n rows of the last Apply / EnsurePass).
    const Value* col(int pass, int dim) const {
      return cols_[pass][dim].data();
    }

   private:
    const GranularitySweep* spec_;
    const DictPlan* dict_;
    const RecordBatch* batch_ = nullptr;  // current batch (BeginBatch)
    size_t n_ = 0;
    Granularity base_;
    std::vector<uint8_t> pass_ready_;
    // cols_[pass][dim] holds `capacity` generalized values.
    std::vector<std::vector<std::vector<Value>>> cols_;
    std::vector<std::vector<Value*>> col_ptrs_;  // per pass, per dim
    std::vector<const Value*> in_ptrs_;
  };

  Columns MakeColumns(size_t capacity,
                      const DictPlan* dict = nullptr) const {
    return Columns(this, capacity, dict);
  }

 private:
  SchemaPtr schema_;
  std::vector<Granularity> grans_;
};

/// Pipeline stage that publishes the sweep spec on the PlanContext so the
/// downstream accumulate/propagate stage can materialize per-executor
/// Columns. Carries no run state of its own — it exists so the EXPLAIN
/// output shows the hierarchy-sweep plan as an explicit operator.
class GeneralizeOp : public PhysicalOp {
 public:
  explicit GeneralizeOp(GranularitySweep spec) : spec_(std::move(spec)) {}

  std::string_view name() const override { return "generalize"; }
  std::string Describe(const Schema& schema) const override;
  Status Run(PlanContext& ctx) override;

  const GranularitySweep& spec() const { return spec_; }

 private:
  GranularitySweep spec_;
};

/// The scan-side granularity set of `workflow`: one entry per distinct
/// granularity a base aggregate or a match-join region enumerator
/// consumes fact rows at. This is what every engine's scan loop sweeps.
GranularitySweep BuildScanSweep(const Workflow& workflow);

/// Builds the plan-wide dictionary artifacts for `table` under `sweep`:
/// ensures the table's dictionary encoding (memoized on the table, so
/// repeated plans share the build) and materializes one code→value LUT
/// per (pass, dimension).
std::shared_ptr<const DictPlan> BuildDictPlan(const FactTable& table,
                                              const GranularitySweep& sweep);

}  // namespace csm

#endif  // CSM_EXEC_OP_GENERALIZE_OP_H_
