#ifndef CSM_EXEC_OP_GENERALIZE_OP_H_
#define CSM_EXEC_OP_GENERALIZE_OP_H_

#include <string>
#include <string_view>
#include <vector>

#include "exec/op/op.h"
#include "model/granularity.h"
#include "storage/record_batch.h"

namespace csm {

/// The one shared implementation of the per-batch `GeneralizeColumns`
/// sweep bookkeeping every engine used to duplicate: scan consumers that
/// share a granularity share one generalized key-column pass per batch —
/// one hierarchy sweep per dimension per *distinct* granularity instead
/// of one γ call per consumer per record.
///
/// The spec (distinct granularities, pass assignment) is immutable after
/// construction; per-scan column buffers live in a Columns instance, so
/// every scheduler executor materializes its own and the sweep is safe
/// to run morsel-parallel.
class GranularitySweep {
 public:
  explicit GranularitySweep(SchemaPtr schema)
      : schema_(std::move(schema)) {}

  /// Registers a consumer granularity, deduplicating identical ones.
  /// Returns the pass index consumers use to find their columns.
  int AddGranularity(const Granularity& gran);

  /// Pass index of `gran`, or -1 when it was never registered.
  int PassOf(const Granularity& gran) const;

  size_t num_passes() const { return grans_.size(); }
  const Granularity& gran(int pass) const { return grans_[pass]; }
  const Schema& schema() const { return *schema_; }

  /// Per-scan working buffers: one generalized column set per pass.
  class Columns {
   public:
    Columns(const GranularitySweep* spec, size_t capacity);

    /// Rolls rows [0, n) of `batch`'s dimension columns up to every
    /// registered granularity — one GeneralizeColumns sweep per pass.
    void Apply(const RecordBatch& batch, size_t n);

    /// Generalized values of dimension `dim` for pass `pass` (valid for
    /// the n rows of the last Apply).
    const Value* col(int pass, int dim) const {
      return cols_[pass][dim].data();
    }

   private:
    const GranularitySweep* spec_;
    // cols_[pass][dim] holds `capacity` generalized values.
    std::vector<std::vector<std::vector<Value>>> cols_;
    std::vector<std::vector<Value*>> col_ptrs_;  // per pass, per dim
    std::vector<const Value*> in_ptrs_;
  };

  Columns MakeColumns(size_t capacity) const {
    return Columns(this, capacity);
  }

 private:
  SchemaPtr schema_;
  std::vector<Granularity> grans_;
};

/// Pipeline stage that publishes the sweep spec on the PlanContext so the
/// downstream accumulate/propagate stage can materialize per-executor
/// Columns. Carries no run state of its own — it exists so the EXPLAIN
/// output shows the hierarchy-sweep plan as an explicit operator.
class GeneralizeOp : public PhysicalOp {
 public:
  explicit GeneralizeOp(GranularitySweep spec) : spec_(std::move(spec)) {}

  std::string_view name() const override { return "generalize"; }
  std::string Describe(const Schema& schema) const override;
  Status Run(PlanContext& ctx) override;

  const GranularitySweep& spec() const { return spec_; }

 private:
  GranularitySweep spec_;
};

/// The scan-side granularity set of `workflow`: one entry per distinct
/// granularity a base aggregate or a match-join region enumerator
/// consumes fact rows at. This is what every engine's scan loop sweeps.
GranularitySweep BuildScanSweep(const Workflow& workflow);

}  // namespace csm

#endif  // CSM_EXEC_OP_GENERALIZE_OP_H_
