#include "exec/exec_context.h"

#include <string>

namespace csm {

Status ExecContext::CheckCancelled(std::string_view where) const {
  if (!cancelled()) return Status::OK();
  return Status::Cancelled("run cancelled during " + std::string(where));
}

ExecStats DeriveExecStats(const Tracer& tracer, SpanId root) {
  ExecStats stats;
  stats.total_seconds = tracer.GetSpan(root).duration_seconds;
  stats.sort_seconds = tracer.SumDurationExclusive(root, {"sort", "plan"});
  stats.scan_seconds =
      tracer.SumDurationExclusive(root, {"scan", "partition"});
  stats.combine_seconds = tracer.SumDurationExclusive(root, {"combine"});
  stats.rows_scanned =
      static_cast<uint64_t>(tracer.SumCounter(root, "rows_scanned"));
  stats.peak_hash_entries =
      static_cast<uint64_t>(tracer.MaxGauge(root, "peak_hash_entries"));
  stats.peak_hash_bytes =
      static_cast<uint64_t>(tracer.MaxGauge(root, "peak_hash_bytes"));
  stats.spilled_bytes =
      static_cast<uint64_t>(tracer.SumCounter(root, "spilled_bytes"));
  stats.materialized_rows =
      static_cast<uint64_t>(tracer.SumCounter(root, "materialized_rows"));
  const int passes = static_cast<int>(tracer.SumCounter(root, "passes"));
  stats.passes = passes > 0 ? passes : 1;
  stats.sort_key = tracer.AttrOrEmpty(root, "sort_key");
  return stats;
}

RunScope::RunScope(const ExecContext& ctx, std::string_view engine_name)
    : ctx_(&ctx) {
  if (ctx.tracer != nullptr) {
    tracer_ = ctx.tracer;
  } else {
    owned_ = std::make_unique<Tracer>();
    tracer_ = owned_.get();
  }
  root_ = tracer_->BeginSpan(engine_name, ctx.trace_parent);
}

RunScope::~RunScope() {
  if (!finished_) tracer_->EndSpan(root_);
}

ExecContext RunScope::Child(SpanId parent) const {
  ExecContext child;
  child.options = ctx_->options;
  child.tracer = tracer_;
  child.trace_parent = parent;
  child.cancel = ctx_->cancel;
  return child;
}

ExecStats RunScope::Finish() {
  tracer_->EndSpan(root_);
  finished_ = true;
  return DeriveExecStats(*tracer_, root_);
}

}  // namespace csm
