#include "exec/factory.h"

#include <algorithm>
#include <string>

#include "exec/adaptive.h"
#include "exec/multi_pass.h"
#include "exec/parallel.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "relational/relational_engine.h"

namespace csm {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSingleScan:
      return "singlescan";
    case EngineKind::kSortScan:
      return "sortscan";
    case EngineKind::kMultiPass:
      return "multipass";
    case EngineKind::kAdaptive:
      return "adaptive";
    case EngineKind::kParallel:
      return "parallel";
    case EngineKind::kRelational:
      return "relational";
  }
  return "unknown";
}

Result<EngineKind> ParseEngineKind(std::string_view text) {
  std::string lower;
  for (char c : text) {
    if (c == '-' || c == '_') continue;  // accept sort-scan / sort_scan
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "singlescan") return EngineKind::kSingleScan;
  if (lower == "sortscan") return EngineKind::kSortScan;
  if (lower == "multipass") return EngineKind::kMultiPass;
  if (lower == "adaptive") return EngineKind::kAdaptive;
  if (lower == "parallel") return EngineKind::kParallel;
  if (lower == "relational" || lower == "db") return EngineKind::kRelational;
  return Status::InvalidArgument(
      "unknown engine '" + std::string(text) +
      "' (expected adaptive, sortscan, singlescan, multipass, parallel or "
      "relational)");
}

Result<std::unique_ptr<Engine>> MakeEngine(EngineKind kind,
                                           const EngineOptions& options) {
  Status st = options.Validate();
  if (!st.ok()) {
    return st.WithContext("MakeEngine(" +
                          std::string(EngineKindName(kind)) + ")");
  }
  std::unique_ptr<Engine> engine;
  switch (kind) {
    case EngineKind::kSingleScan:
      engine = std::make_unique<SingleScanEngine>();
      break;
    case EngineKind::kSortScan:
      engine = std::make_unique<SortScanEngine>();
      break;
    case EngineKind::kMultiPass:
      engine = std::make_unique<MultiPassEngine>();
      break;
    case EngineKind::kAdaptive:
      engine = std::make_unique<AdaptiveEngine>();
      break;
    case EngineKind::kParallel:
      engine = std::make_unique<ParallelSortScanEngine>();
      break;
    case EngineKind::kRelational:
      engine = std::make_unique<RelationalEngine>();
      break;
  }
  if (engine == nullptr) {
    return Status::InvalidArgument("MakeEngine: unknown EngineKind");
  }
  return engine;
}

}  // namespace csm
