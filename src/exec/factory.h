#ifndef CSM_EXEC_FACTORY_H_
#define CSM_EXEC_FACTORY_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "exec/engine.h"

namespace csm {

/// Every engine the system ships. One enum so tools, benches and tests
/// select engines by name instead of hard-coding constructors.
enum class EngineKind {
  kSingleScan,
  kSortScan,
  kMultiPass,
  kAdaptive,
  kParallel,
  kRelational,
};

/// Canonical lowercase name ("sortscan", "adaptive", ...).
std::string_view EngineKindName(EngineKind kind);

/// Parses an engine name as accepted by csm_query --engine. Tolerates
/// "sort-scan"/"sort_scan" style separators. InvalidArgument on unknown
/// names, with the list of valid ones in the message.
Result<EngineKind> ParseEngineKind(std::string_view text);

/// Constructs the engine after validating `options`
/// (EngineOptions::Validate), so misconfigurations surface at
/// construction instead of as silent misbehavior mid-run. Engines are
/// stateless — tuning still flows through the ExecContext passed to
/// Run — so the options are validated, not stored; pass the same
/// options object in the ExecContext. Returns InvalidArgument when
/// validation fails.
Result<std::unique_ptr<Engine>> MakeEngine(
    EngineKind kind, const EngineOptions& options = EngineOptions{});

}  // namespace csm

#endif  // CSM_EXEC_FACTORY_H_
