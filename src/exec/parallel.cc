#include "exec/parallel.h"

#include <algorithm>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"
#include "exec/sort_scan.h"

namespace csm {

namespace {

/// The coarsest non-ALL level any measure uses for `dim`, or -1 when some
/// measure rolls the dimension away entirely.
int CoarsestUsedLevel(const Workflow& workflow, int dim) {
  const Hierarchy& h = *workflow.schema()->dim(dim).hierarchy;
  int coarsest = -1;
  for (const MeasureDef& def : workflow.measures()) {
    const int level = def.gran.level(dim);
    if (level >= h.all_level()) return -1;
    coarsest = std::max(coarsest, level);
  }
  return coarsest;
}

bool HasSiblingWindowOn(const Workflow& workflow, int dim) {
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op != MeasureOp::kMatch ||
        def.match.type != MatchType::kSibling) {
      continue;
    }
    for (const SiblingWindow& w : def.match.windows) {
      if (w.dim == dim) return true;
    }
  }
  return false;
}

}  // namespace

ParallelSortScanEngine::ParallelSortScanEngine(EngineOptions options,
                                               int num_threads)
    : options_(std::move(options)),
      num_threads_(num_threads > 0
                       ? num_threads
                       : std::max(2u,
                                  std::thread::hardware_concurrency())) {}

Result<int> ParallelSortScanEngine::PlanPartitionDim(
    const Workflow& workflow) {
  const Schema& schema = *workflow.schema();
  int best_dim = -1;
  double best_card = 0;
  for (int dim = 0; dim < schema.num_dims(); ++dim) {
    const int level = CoarsestUsedLevel(workflow, dim);
    if (level < 0) continue;  // some measure spans all partitions
    if (HasSiblingWindowOn(workflow, dim)) continue;
    const double card =
        schema.dim(dim).hierarchy->EstimatedCardinality(level);
    if (card > best_card) {
      best_card = card;
      best_dim = dim;
    }
  }
  if (best_dim < 0) {
    return Status::NotFound(
        "no partitionable dimension: every candidate is rolled to ALL by "
        "some measure or carries a sibling window");
  }
  if (best_card < 2) {
    return Status::NotFound("partition dimension would have one value");
  }
  return best_dim;
}

Result<EvalOutput> ParallelSortScanEngine::Run(const Workflow& workflow,
                                               const FactTable& fact) {
  Timer total_timer;
  auto plan = PlanPartitionDim(workflow);
  if (!plan.ok()) {
    // Not partitionable: degrade gracefully to the sequential engine.
    SortScanEngine sequential(options_);
    CSM_ASSIGN_OR_RETURN(EvalOutput out, sequential.Run(workflow, fact));
    out.stats.sort_key = "[sequential] " + out.stats.sort_key;
    return out;
  }
  const int pdim = *plan;
  const Schema& schema = *workflow.schema();
  const int plevel = CoarsestUsedLevel(workflow, pdim);
  const Hierarchy& ph = *schema.dim(pdim).hierarchy;
  const int shards = num_threads_;

  // ---- Partition: every region's rows land in exactly one shard because
  // the hash key is the dimension value at the coarsest level any measure
  // groups it by (finer regions nest inside).
  std::vector<FactTable> parts;
  parts.reserve(shards);
  for (int i = 0; i < shards; ++i) parts.emplace_back(workflow.schema());
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    const Value* dims = fact.dim_row(row);
    const Value block = ph.Generalize(dims[pdim], 0, plevel);
    parts[Mix64(block) % shards].AppendRow(dims,
                                           fact.measure_row(row));
  }

  // ---- Independent sort/scan per shard.
  EngineOptions shard_options = options_;
  // Budgets are per machine, not per shard.
  shard_options.memory_budget_bytes =
      std::max<size_t>(options_.memory_budget_bytes / shards, 4 << 20);
  std::vector<Result<EvalOutput>> results;
  results.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    results.emplace_back(Status::Internal("not run"));
  }
  {
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (int i = 0; i < shards; ++i) {
      threads.emplace_back([&, i] {
        SortScanEngine engine(shard_options);
        results[i] = engine.Run(workflow, parts[i]);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // ---- Merge: concatenate the disjoint tables, combine the stats.
  EvalOutput out;
  for (int i = 0; i < shards; ++i) {
    CSM_RETURN_NOT_OK(results[i].status().WithContext(
        "shard " + std::to_string(i)));
    EvalOutput& shard = *results[i];
    out.stats.rows_scanned += shard.stats.rows_scanned;
    out.stats.sort_seconds += shard.stats.sort_seconds;
    out.stats.scan_seconds += shard.stats.scan_seconds;
    out.stats.spilled_bytes += shard.stats.spilled_bytes;
    out.stats.materialized_rows += shard.stats.materialized_rows;
    out.stats.peak_hash_entries += shard.stats.peak_hash_entries;
    out.stats.peak_hash_bytes += shard.stats.peak_hash_bytes;
    if (out.stats.sort_key.empty()) {
      out.stats.sort_key = "[" + std::to_string(shards) + " shards on " +
                           schema.dim(pdim).name + "] " +
                           shard.stats.sort_key;
    }
    for (auto& [name, table] : shard.tables) {
      auto it = out.tables.find(name);
      if (it == out.tables.end()) {
        out.tables.emplace(name, std::move(table));
      } else {
        for (size_t row = 0; row < table.num_rows(); ++row) {
          it->second.Append(table.key_row(row), table.value(row));
        }
      }
    }
  }
  for (auto& [name, table] : out.tables) table.SortByKeyLex();
  out.stats.total_seconds = total_timer.Seconds();
  return out;
}

}  // namespace csm
