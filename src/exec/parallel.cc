#include "exec/parallel.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/exec_context.h"
#include "exec/op/generalize_op.h"
#include "exec/scheduler.h"
#include "exec/sort_scan.h"
#include "storage/record_batch.h"

namespace csm {

namespace {

/// The coarsest non-ALL level any measure uses for `dim`, or -1 when some
/// measure rolls the dimension away entirely.
int CoarsestUsedLevel(const Workflow& workflow, int dim) {
  const Hierarchy& h = *workflow.schema()->dim(dim).hierarchy;
  int coarsest = -1;
  for (const MeasureDef& def : workflow.measures()) {
    const int level = def.gran.level(dim);
    if (level >= h.all_level()) return -1;
    coarsest = std::max(coarsest, level);
  }
  return coarsest;
}

bool HasSiblingWindowOn(const Workflow& workflow, int dim) {
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op != MeasureOp::kMatch ||
        def.match.type != MatchType::kSibling) {
      continue;
    }
    for (const SiblingWindow& w : def.match.windows) {
      if (w.dim == dim) return true;
    }
  }
  return false;
}

int ResolveThreads(const EngineOptions& options) {
  if (options.parallel_threads > 0) return options.parallel_threads;
  return static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
}

/// Cross-operator state of one partitioned run: the shard tables the
/// partition stage fills and the per-shard results the shard stage leaves
/// for the merge.
struct ParallelState {
  int pdim = -1;
  int plevel = -1;
  int shards = 0;
  // Partition granularity (pdim at plevel, every other dimension at
  // ALL) — registered with the plan's GeneralizeOp sweep so the
  // partition stage shares the one generalization implementation (and
  // its dictionary LUTs) with the scan stages.
  Granularity pgran;
  std::vector<FactTable> parts;
  std::vector<Result<EvalOutput>> results;
};

/// Hash-partitions the fact table on the chosen dimension at its coarsest
/// used level, so every region of every measure nests inside one shard.
class PartitionOp : public PhysicalOp {
 public:
  explicit PartitionOp(std::shared_ptr<ParallelState> state)
      : state_(std::move(state)) {}

  std::string_view name() const override { return "partition"; }

  std::string Describe(const Schema& schema) const override {
    return "hash-partition on " + schema.dim(state_->pdim).name +
           " (level " + std::to_string(state_->plevel) + ") into " +
           std::to_string(state_->shards) + " shard(s)";
  }

  Status Run(PlanContext& ctx) override {
    ParallelState& state = *state_;
    const Schema& schema = *ctx.workflow->schema();
    const FactTable& fact = *ctx.fact;
    Tracer& tracer = ctx.tracer();
    CSM_CHECK(ctx.generalize != nullptr)
        << "parallel plan is missing the generalize stage";

    // The partition-key mapping runs through the plan's shared sweep:
    // fill a batch, materialize the partition-granularity pass (a
    // dictionary LUT gather when the plan is encoded, the hierarchy
    // sweep otherwise), then append rows to their shards. Chunks follow
    // scan_batch_rows.
    ScopedSpan partition_span(&tracer, "partition", ctx.root());
    state.parts.reserve(state.shards);
    for (int i = 0; i < state.shards; ++i) {
      state.parts.emplace_back(ctx.workflow->schema());
    }
    const size_t chunk_rows =
        std::max<size_t>(1, ctx.exec->options.scan_batch_rows);
    const GranularitySweep& sweep = ctx.generalize->spec();
    const int pass = sweep.PassOf(state.pgran);
    CSM_CHECK(pass >= 0)
        << "partition granularity missing from the sweep spec";
    GranularitySweep::Columns cols =
        sweep.MakeColumns(chunk_rows, ctx.dict.get());
    RecordBatch batch(schema.num_dims(), schema.num_measures(),
                      chunk_rows);
    uint64_t chunks = 0;
    for (size_t begin = 0; begin < fact.num_rows(); begin += chunk_rows) {
      if (ctx.cancelled()) {
        return ctx.exec->CheckCancelled("parallel partition");
      }
      const size_t n = std::min(chunk_rows, fact.num_rows() - begin);
      ++chunks;
      batch.FillFromTable(fact, begin, n);
      cols.BeginBatch(batch, n);
      cols.EnsurePass(pass);
      const Value* pcol = cols.col(pass, state.pdim);
      for (size_t r = 0; r < n; ++r) {
        state.parts[Mix64(pcol[r]) % state.shards].AppendRow(
            fact.dim_row(begin + r), fact.measure_row(begin + r));
      }
    }
    tracer.AddCounter(partition_span.id(), "batches",
                      static_cast<double>(chunks));
    tracer.SetAttr(partition_span.id(), "batch_rows",
                   std::to_string(chunk_rows));
    tracer.SetAttr(partition_span.id(), "dict",
                   ctx.dict != nullptr ? "on" : "off");
    return Status::OK();
  }

 private:
  std::shared_ptr<ParallelState> state_;
};

/// Runs one independent sort/scan per shard as a task batch on the shared
/// scheduler pool. Each task opens its own shard span from its executing
/// thread, so thread attribution lands on the worker.
class ShardRunOp : public PhysicalOp {
 public:
  explicit ShardRunOp(std::shared_ptr<ParallelState> state)
      : state_(std::move(state)) {}

  std::string_view name() const override { return "shards"; }

  std::string Describe(const Schema&) const override {
    return std::to_string(state_->shards) +
           " independent sort/scan shard(s) on the scheduler pool";
  }

  Status Run(PlanContext& ctx) override {
    ParallelState& state = *state_;
    Tracer& tracer = ctx.tracer();
    const size_t shard_budget = std::max<size_t>(
        ctx.exec->options.memory_budget_bytes / state.shards, 4 << 20);

    state.results.reserve(state.shards);
    for (int i = 0; i < state.shards; ++i) {
      state.results.emplace_back(Status::Internal("not run"));
    }
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(state.shards);
    for (int i = 0; i < state.shards; ++i) {
      tasks.push_back([&, i]() -> Status {
        ScopedSpan shard_span(&tracer, "shard", ctx.root());
        ExecContext shard_ctx = ctx.scope->Child(shard_span.id());
        // Budgets are per machine, not per shard.
        shard_ctx.options.memory_budget_bytes = shard_budget;
        // One executor per shard: the shards already occupy the pool, so
        // morsel/sort parallelism inside a shard would oversubscribe.
        shard_ctx.options.parallel_threads = 1;
        SortScanEngine engine;
        state.results[i] = engine.Run(*ctx.workflow, state.parts[i],
                                      shard_ctx);
        return Status::OK();  // per-shard errors surface at the merge
      });
    }
    return ParallelTasks(*ctx.pool, state.shards, ctx.exec->cancel,
                         tasks);
  }

 private:
  std::shared_ptr<ParallelState> state_;
};

/// Concatenates the disjoint shard tables into the run's output.
class MergeShardsOp : public PhysicalOp {
 public:
  explicit MergeShardsOp(std::shared_ptr<ParallelState> state)
      : state_(std::move(state)) {}

  std::string_view name() const override { return "merge"; }

  std::string Describe(const Schema&) const override {
    return "concatenate disjoint shard tables, sort by key";
  }

  Status Run(PlanContext& ctx) override {
    ParallelState& state = *state_;
    const Schema& schema = *ctx.workflow->schema();
    Tracer& tracer = ctx.tracer();
    ScopedSpan combine_span(&tracer, "combine", ctx.root());
    EvalOutput& out = *ctx.out;
    // Shards run concurrently, so the machine-wide peak is the *sum* of
    // the per-shard peaks; record it on the root where it dominates the
    // subtree maximum the stats derivation takes.
    uint64_t total_peak_entries = 0;
    uint64_t total_peak_bytes = 0;
    std::string sort_key_label;
    for (int i = 0; i < state.shards; ++i) {
      CSM_RETURN_NOT_OK(state.results[i].status().WithContext(
          "shard " + std::to_string(i)));
      EvalOutput& shard = *state.results[i];
      total_peak_entries += shard.stats.peak_hash_entries;
      total_peak_bytes += shard.stats.peak_hash_bytes;
      if (sort_key_label.empty()) {
        sort_key_label = "[" + std::to_string(state.shards) +
                         " shards on " + schema.dim(state.pdim).name +
                         "] " + shard.stats.sort_key;
      }
      for (auto& [name, table] : shard.tables) {
        auto it = out.tables.find(name);
        if (it == out.tables.end()) {
          out.tables.emplace(name, std::move(table));
        } else {
          for (size_t row = 0; row < table.num_rows(); ++row) {
            it->second.Append(table.key_row(row), table.value(row));
          }
        }
      }
    }
    for (auto& [name, table] : out.tables) table.SortByKeyLex();
    combine_span.End();

    tracer.SetGaugeMax(ctx.root(), "peak_hash_entries",
                       static_cast<double>(total_peak_entries));
    tracer.SetGaugeMax(ctx.root(), "peak_hash_bytes",
                       static_cast<double>(total_peak_bytes));
    tracer.SetAttr(ctx.root(), "sort_key", sort_key_label);
    return Status::OK();
  }

 private:
  std::shared_ptr<ParallelState> state_;
};

/// Degraded plan when no dimension qualifies: run the sequential engine
/// under the parallel root and record why.
class FallbackOp : public PhysicalOp {
 public:
  explicit FallbackOp(std::string reason) : reason_(std::move(reason)) {}

  std::string_view name() const override { return "fallback"; }

  std::string Describe(const Schema&) const override {
    return "sequential sort/scan (not partitionable: " + reason_ + ")";
  }

  Status Run(PlanContext& ctx) override {
    Tracer& tracer = ctx.tracer();
    SortScanEngine sequential;
    ExecContext child = ctx.scope->Child(ctx.root());
    CSM_ASSIGN_OR_RETURN(
        EvalOutput out, sequential.Run(*ctx.workflow, *ctx.fact, child));
    tracer.SetAttr(ctx.root(), "sort_key",
                   "[sequential] " + out.stats.sort_key);
    tracer.SetAttr(ctx.root(), "fallback", "sequential");
    tracer.SetAttr(ctx.root(), "fallback_reason", reason_);
    ctx.out->tables = std::move(out.tables);
    return Status::OK();
  }

 private:
  std::string reason_;
};

}  // namespace

Result<int> ParallelSortScanEngine::PlanPartitionDim(
    const Workflow& workflow) {
  const Schema& schema = *workflow.schema();
  int best_dim = -1;
  double best_card = 0;
  for (int dim = 0; dim < schema.num_dims(); ++dim) {
    const int level = CoarsestUsedLevel(workflow, dim);
    if (level < 0) continue;  // some measure spans all partitions
    if (HasSiblingWindowOn(workflow, dim)) continue;
    const double card =
        schema.dim(dim).hierarchy->EstimatedCardinality(level);
    if (card > best_card) {
      best_card = card;
      best_dim = dim;
    }
  }
  if (best_dim < 0) {
    return Status::NotFound(
        "no partitionable dimension: every candidate is rolled to ALL by "
        "some measure or carries a sibling window");
  }
  if (best_card < 2) {
    return Status::NotFound("partition dimension would have one value");
  }
  return best_dim;
}

PhysicalPlan BuildParallelPlan(const Workflow& workflow,
                               const EngineOptions& options) {
  PhysicalPlan plan;
  plan.engine = "parallel-sort-scan";
  plan.dict_encoding = options.dict_encoding && options.vectorized;
  plan.morsel_rows = options.morsel_rows;
  plan.scan_batch_rows = options.scan_batch_rows;
  plan.threads = ResolveThreads(options);

  auto pdim = ParallelSortScanEngine::PlanPartitionDim(workflow);
  if (!pdim.ok()) {
    plan.ops.push_back(
        std::make_unique<FallbackOp>(pdim.status().message()));
    return plan;
  }

  auto state = std::make_shared<ParallelState>();
  state->pdim = *pdim;
  state->plevel = CoarsestUsedLevel(workflow, *pdim);
  state->shards = plan.threads;
  const Schema& schema = *workflow.schema();
  std::vector<int> levels(static_cast<size_t>(schema.num_dims()));
  for (int i = 0; i < schema.num_dims(); ++i) {
    levels[i] = i == state->pdim ? state->plevel
                                 : schema.dim(i).hierarchy->all_level();
  }
  state->pgran = Granularity(std::move(levels));
  GranularitySweep sweep(workflow.schema());
  sweep.AddGranularity(state->pgran);
  plan.engine_state = state;
  plan.ops.push_back(std::make_unique<GeneralizeOp>(std::move(sweep)));
  plan.ops.push_back(std::make_unique<PartitionOp>(state));
  plan.ops.push_back(std::make_unique<ShardRunOp>(state));
  plan.ops.push_back(std::make_unique<MergeShardsOp>(state));
  return plan;
}

Result<EvalOutput> ParallelSortScanEngine::Run(const Workflow& workflow,
                                               const FactTable& fact,
                                               ExecContext& ctx) {
  PhysicalPlan plan = BuildParallelPlan(workflow, ctx.options);
  return plan.Execute(workflow, fact, ctx);
}

}  // namespace csm
