#include "exec/parallel.h"

#include <algorithm>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/exec_context.h"
#include "exec/sort_scan.h"

namespace csm {

namespace {

/// The coarsest non-ALL level any measure uses for `dim`, or -1 when some
/// measure rolls the dimension away entirely.
int CoarsestUsedLevel(const Workflow& workflow, int dim) {
  const Hierarchy& h = *workflow.schema()->dim(dim).hierarchy;
  int coarsest = -1;
  for (const MeasureDef& def : workflow.measures()) {
    const int level = def.gran.level(dim);
    if (level >= h.all_level()) return -1;
    coarsest = std::max(coarsest, level);
  }
  return coarsest;
}

bool HasSiblingWindowOn(const Workflow& workflow, int dim) {
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op != MeasureOp::kMatch ||
        def.match.type != MatchType::kSibling) {
      continue;
    }
    for (const SiblingWindow& w : def.match.windows) {
      if (w.dim == dim) return true;
    }
  }
  return false;
}

int ResolveThreads(const EngineOptions& options) {
  if (options.parallel_threads > 0) return options.parallel_threads;
  return static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
}

}  // namespace

Result<int> ParallelSortScanEngine::PlanPartitionDim(
    const Workflow& workflow) {
  const Schema& schema = *workflow.schema();
  int best_dim = -1;
  double best_card = 0;
  for (int dim = 0; dim < schema.num_dims(); ++dim) {
    const int level = CoarsestUsedLevel(workflow, dim);
    if (level < 0) continue;  // some measure spans all partitions
    if (HasSiblingWindowOn(workflow, dim)) continue;
    const double card =
        schema.dim(dim).hierarchy->EstimatedCardinality(level);
    if (card > best_card) {
      best_card = card;
      best_dim = dim;
    }
  }
  if (best_dim < 0) {
    return Status::NotFound(
        "no partitionable dimension: every candidate is rolled to ALL by "
        "some measure or carries a sibling window");
  }
  if (best_card < 2) {
    return Status::NotFound("partition dimension would have one value");
  }
  return best_dim;
}

Result<EvalOutput> ParallelSortScanEngine::Run(const Workflow& workflow,
                                               const FactTable& fact,
                                               ExecContext& ctx) {
  RunScope rs(ctx, name());
  Tracer& tracer = rs.tracer();

  ScopedSpan plan_span(&tracer, "plan", rs.root());
  auto plan = PlanPartitionDim(workflow);
  plan_span.End();
  if (!plan.ok()) {
    // Not partitionable: degrade gracefully to the sequential engine.
    SortScanEngine sequential;
    ExecContext child = rs.Child(rs.root());
    CSM_ASSIGN_OR_RETURN(EvalOutput out,
                         sequential.Run(workflow, fact, child));
    tracer.SetAttr(rs.root(), "sort_key",
                   "[sequential] " + out.stats.sort_key);
    tracer.SetAttr(rs.root(), "fallback", "sequential");
    tracer.SetAttr(rs.root(), "fallback_reason", plan.status().message());
    out.stats = rs.Finish();
    return out;
  }
  const int pdim = *plan;
  const Schema& schema = *workflow.schema();
  const int plevel = CoarsestUsedLevel(workflow, pdim);
  const Hierarchy& ph = *schema.dim(pdim).hierarchy;
  const int shards = ResolveThreads(ctx.options);

  // ---- Partition: every region's rows land in exactly one shard because
  // the hash key is the dimension value at the coarsest level any measure
  // groups it by (finer regions nest inside).
  // The partition-key mapping is hoisted into a per-chunk column sweep:
  // gather the partition dimension, generalize the whole column at once,
  // then append rows to their shards. Chunks follow scan_batch_rows.
  ScopedSpan partition_span(&tracer, "partition", rs.root());
  std::vector<FactTable> parts;
  parts.reserve(shards);
  for (int i = 0; i < shards; ++i) parts.emplace_back(workflow.schema());
  const size_t chunk_rows =
      std::max<size_t>(1, ctx.options.scan_batch_rows);
  std::vector<Value> block_col(chunk_rows);
  uint64_t chunks = 0;
  for (size_t begin = 0; begin < fact.num_rows(); begin += chunk_rows) {
    if (ctx.cancelled()) {
      return ctx.CheckCancelled("parallel partition");
    }
    const size_t n = std::min(chunk_rows, fact.num_rows() - begin);
    ++chunks;
    for (size_t r = 0; r < n; ++r) {
      block_col[r] = fact.dim_row(begin + r)[pdim];
    }
    ph.GeneralizeColumn(block_col.data(), n, 0, plevel, block_col.data());
    for (size_t r = 0; r < n; ++r) {
      parts[Mix64(block_col[r]) % shards].AppendRow(
          fact.dim_row(begin + r), fact.measure_row(begin + r));
    }
  }
  tracer.AddCounter(partition_span.id(), "batches",
                    static_cast<double>(chunks));
  tracer.SetAttr(partition_span.id(), "batch_rows",
                 std::to_string(chunk_rows));
  partition_span.End();

  // ---- Independent sort/scan per shard. Each worker opens its own shard
  // span from its own thread, so thread attribution lands on the worker.
  const size_t shard_budget =
      std::max<size_t>(ctx.options.memory_budget_bytes / shards, 4 << 20);
  std::vector<Result<EvalOutput>> results;
  results.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    results.emplace_back(Status::Internal("not run"));
  }
  {
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (int i = 0; i < shards; ++i) {
      threads.emplace_back([&, i] {
        ScopedSpan shard_span(&tracer, "shard", rs.root());
        ExecContext shard_ctx = rs.Child(shard_span.id());
        // Budgets are per machine, not per shard.
        shard_ctx.options.memory_budget_bytes = shard_budget;
        // One sort worker per shard: the shards already occupy every
        // engine thread, so a parallel per-shard sort would oversubscribe.
        shard_ctx.options.parallel_threads = 1;
        SortScanEngine engine;
        results[i] = engine.Run(workflow, parts[i], shard_ctx);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // ---- Merge: concatenate the disjoint tables.
  ScopedSpan combine_span(&tracer, "combine", rs.root());
  EvalOutput out;
  // Shards run concurrently, so the machine-wide peak is the *sum* of the
  // per-shard peaks; record it on the root where it dominates the
  // subtree maximum the stats derivation takes.
  uint64_t total_peak_entries = 0;
  uint64_t total_peak_bytes = 0;
  std::string sort_key_label;
  for (int i = 0; i < shards; ++i) {
    CSM_RETURN_NOT_OK(results[i].status().WithContext(
        "shard " + std::to_string(i)));
    EvalOutput& shard = *results[i];
    total_peak_entries += shard.stats.peak_hash_entries;
    total_peak_bytes += shard.stats.peak_hash_bytes;
    if (sort_key_label.empty()) {
      sort_key_label = "[" + std::to_string(shards) + " shards on " +
                       schema.dim(pdim).name + "] " + shard.stats.sort_key;
    }
    for (auto& [name, table] : shard.tables) {
      auto it = out.tables.find(name);
      if (it == out.tables.end()) {
        out.tables.emplace(name, std::move(table));
      } else {
        for (size_t row = 0; row < table.num_rows(); ++row) {
          it->second.Append(table.key_row(row), table.value(row));
        }
      }
    }
  }
  for (auto& [name, table] : out.tables) table.SortByKeyLex();
  combine_span.End();

  tracer.SetGaugeMax(rs.root(), "peak_hash_entries",
                     static_cast<double>(total_peak_entries));
  tracer.SetGaugeMax(rs.root(), "peak_hash_bytes",
                     static_cast<double>(total_peak_bytes));
  tracer.SetAttr(rs.root(), "sort_key", sort_key_label);
  out.stats = rs.Finish();
  return out;
}

}  // namespace csm
