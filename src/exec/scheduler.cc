#include "exec/scheduler.h"

#include <algorithm>

namespace csm {

ThreadPool::ThreadPool(int workers) {
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = std::max<int>(kMinWorkers,
                            hw > 1 ? static_cast<int>(hw) - 1 : kMinWorkers);
  }
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Job* job = nullptr;
    int idx = -1;
    for (Job* candidate : jobs_) {
      if (candidate->next < candidate->executors) {
        job = candidate;
        idx = job->next++;
        break;
      }
    }
    if (job == nullptr) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    if (job->next >= job->executors) {
      jobs_.erase(std::find(jobs_.begin(), jobs_.end(), job));
    }
    {
      std::lock_guard<std::mutex> job_lock(job->mu);
      ++job->started;
    }
    lock.unlock();
    (*job->fn)(idx);
    {
      // Notify while still holding job->mu: the caller destroys the
      // stack-allocated Job the moment it observes finished == started,
      // so this must be the worker's last touch of *job, sequenced
      // before the unlock the caller's wait re-acquires through.
      std::lock_guard<std::mutex> job_lock(job->mu);
      ++job->finished;
      job->done_cv.notify_all();
    }
    lock.lock();
  }
}

void ThreadPool::RunOnExecutors(int executors,
                                const std::function<void(int)>& fn) {
  executors = std::max(1, executors);
  Job job;
  job.fn = &fn;
  job.executors = executors;
  if (executors > 1) {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(&job);
    cv_.notify_all();
  }
  fn(0);
  if (executors > 1) {
    // Withdraw the unclaimed executor slots, then wait for the workers
    // that did claim one. A slot claimed under mu_ is always followed by
    // a `started` increment before the worker drops mu_, so started is
    // exact once the job is out of the queue.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = std::find(jobs_.begin(), jobs_.end(), &job);
      if (it != jobs_.end()) jobs_.erase(it);
      job.next = job.executors;  // no further claims
    }
    std::unique_lock<std::mutex> job_lock(job.mu);
    job.done_cv.wait(job_lock,
                     [&job] { return job.finished == job.started; });
  }
}

namespace {

/// One executor's owned slice of the morsel index space.
struct MorselRange {
  std::atomic<size_t> next{0};
  size_t end = 0;
};

}  // namespace

Status ParallelMorsels(ThreadPool& pool, size_t total_rows,
                       size_t morsel_rows, int max_executors,
                       const std::atomic<bool>* cancel,
                       const MorselBody& body, MorselStats* stats) {
  morsel_rows = std::max<size_t>(1, morsel_rows);
  const size_t num_morsels =
      total_rows == 0 ? 0 : (total_rows + morsel_rows - 1) / morsel_rows;
  int executors = max_executors > 0
                      ? std::min(max_executors, pool.workers() + 1)
                      : pool.workers() + 1;
  executors =
      std::max(1, std::min<int>(executors,
                                static_cast<int>(std::min<size_t>(
                                    num_morsels, 1u << 14))));
  if (stats != nullptr) {
    stats->morsel_rows = morsel_rows;
    stats->pool_threads = executors;
    stats->morsels = 0;
    stats->steals = 0;
  }
  if (num_morsels == 0) return Status::OK();

  // Contiguous owned ranges: executor e owns morsels
  // [e * per, min((e+1) * per, M)).
  const size_t per = (num_morsels + executors - 1) / executors;
  std::vector<MorselRange> ranges(executors);
  for (int e = 0; e < executors; ++e) {
    const size_t lo = std::min<size_t>(e * per, num_morsels);
    ranges[e].next.store(lo, std::memory_order_relaxed);
    ranges[e].end = std::min<size_t>(lo + per, num_morsels);
  }

  std::atomic<bool> abort{false};
  std::atomic<uint64_t> morsels_run{0};
  std::atomic<uint64_t> steals{0};
  std::mutex err_mu;
  size_t err_morsel = num_morsels;  // lowest failing morsel wins
  Status err = Status::OK();
  bool saw_cancel = false;

  auto run_morsel = [&](size_t m, int executor, bool stolen) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(err_mu);
      saw_cancel = true;
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    const size_t begin = m * morsel_rows;
    const size_t end = std::min(begin + morsel_rows, total_rows);
    Status s = body(m, begin, end, executor);
    morsels_run.fetch_add(1, std::memory_order_relaxed);
    if (stolen) steals.fetch_add(1, std::memory_order_relaxed);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (m < err_morsel) {
        err_morsel = m;
        err = std::move(s);
      }
      abort.store(true, std::memory_order_relaxed);
    }
  };

  pool.RunOnExecutors(executors, [&](int executor) {
    // Executors beyond the planned count can appear when the pool is
    // re-offered the job; they just join the stealing phase.
    const int own = executor < executors ? executor : executors;
    if (own < executors) {
      MorselRange& mine = ranges[own];
      for (;;) {
        if (abort.load(std::memory_order_relaxed)) return;
        const size_t m = mine.next.fetch_add(1, std::memory_order_relaxed);
        if (m >= mine.end) break;
        run_morsel(m, executor, /*stolen=*/false);
      }
    }
    // Steal from the front of other ranges until a full sweep finds
    // nothing left.
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      bool found = false;
      for (int v = 1; v <= executors; ++v) {
        MorselRange& victim = ranges[(own + v) % executors];
        const size_t m =
            victim.next.fetch_add(1, std::memory_order_relaxed);
        if (m < victim.end) {
          run_morsel(m, executor, /*stolen=*/true);
          found = true;
          break;
        }
      }
      if (!found) return;
    }
  });

  if (stats != nullptr) {
    stats->morsels = morsels_run.load(std::memory_order_relaxed);
    stats->steals = steals.load(std::memory_order_relaxed);
  }
  if (!err.ok()) return err;
  if (saw_cancel ||
      (cancel != nullptr && cancel->load(std::memory_order_relaxed))) {
    return Status::Cancelled("cancelled during morsel scan");
  }
  return Status::OK();
}

Status ParallelTasks(ThreadPool& pool, int max_executors,
                     const std::atomic<bool>* cancel,
                     const std::vector<std::function<Status()>>& tasks) {
  if (tasks.empty()) return Status::OK();
  int executors = max_executors > 0
                      ? std::min(max_executors, pool.workers() + 1)
                      : pool.workers() + 1;
  executors = std::max(
      1, std::min<int>(executors, static_cast<int>(tasks.size())));

  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex err_mu;
  size_t err_task = tasks.size();
  Status err = Status::OK();
  bool saw_cancel = false;

  pool.RunOnExecutors(executors, [&](int) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(err_mu);
        saw_cancel = true;
        return;
      }
      const size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks.size()) return;
      Status s = tasks[t]();
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (t < err_task) {
          err_task = t;
          err = std::move(s);
        }
        abort.store(true, std::memory_order_relaxed);
      }
    }
  });

  if (!err.ok()) return err;
  if (saw_cancel) return Status::Cancelled("cancelled during task batch");
  return Status::OK();
}

}  // namespace csm
