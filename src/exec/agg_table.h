#ifndef CSM_EXEC_AGG_TABLE_H_
#define CSM_EXEC_AGG_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "agg/aggregate.h"
#include "common/flat_hash.h"
#include "storage/measure_table.h"

namespace csm {

/// Engine-facing aggregation table: one measure's group-by states keyed by
/// fixed-width packed region keys, backed by FlatKeyMap. This is the hash
/// table every scan loop updates per record, so Update is branch-light:
/// probe by cached hash, AggInit on first touch, AggUpdate in place.
class AggTable {
 public:
  AggTable() : AggTable(AggKind::kCount, 1) {}
  AggTable(AggKind kind, size_t key_width)
      : kind_(kind), map_(key_width) {}

  AggTable(AggTable&&) = default;
  AggTable& operator=(AggTable&&) = default;

  AggKind kind() const { return kind_; }
  size_t size() const { return map_.size(); }
  size_t key_width() const { return map_.key_width(); }

  /// Folds one input value into the group of `key` (width key_width()).
  void Update(const Value* key, double value) {
    bool inserted = false;
    AggState& state = map_.FindOrInsert(key, &inserted);
    if (inserted) AggInit(kind_, &state);
    AggUpdate(kind_, &state, value);
  }

  /// Bulk probe: folds `sel_n` pre-encoded rows in one sweep. `keys` is
  /// a dense interleaved buffer (position s's key at
  /// keys[s * key_width()]) and `hashes[s]` the matching
  /// FlatKeyMap-compatible hash (HashSpan + NonZeroHash) — the caller
  /// has already dropped filtered-out rows, so only selected rows pay
  /// for key encoding. `values` is the full batch's input column; it is
  /// read at values[sel[s]] (ascending original row indices), or
  /// values[s] when `sel` is nullptr. A nullptr `values` means 1.0 for
  /// every row (the COUNT case). Probes are software-prefetched a
  /// window ahead; rows fold in selection order, so each group sees the
  /// same AggUpdate sequence as the per-row loop and the states are
  /// bit-identical.
  void FoldBatch(const Value* keys, const uint64_t* hashes,
                 const double* values, const uint32_t* sel, size_t sel_n);

  /// Folds every group of `other` (a partial aggregate over disjoint
  /// input rows, same kind and key width) into this table via AggMerge.
  /// Valid for every kind, including the algebraic and holistic ones.
  /// Merging per-morsel partials in morsel-index order keeps float
  /// accumulation deterministic across scheduler thread counts.
  void MergeFrom(const AggTable& other);

  /// Approximate resident bytes including COUNT DISTINCT sets.
  size_t ApproxBytes() const;

  /// Finalizes every group into a key-sorted MeasureTable and clears the
  /// table.
  MeasureTable Materialize(SchemaPtr schema, const Granularity& gran,
                           const std::string& name);

  FlatKeyMap<AggState>& map() { return map_; }
  const FlatKeyMap<AggState>& map() const { return map_; }

 private:
  AggKind kind_;
  FlatKeyMap<AggState> map_;
};

}  // namespace csm

#endif  // CSM_EXEC_AGG_TABLE_H_
