#include "exec/delta.h"

#include <algorithm>
#include <utility>

#include "algebra/evaluator.h"
#include "algebra/measure_ops.h"
#include "common/logging.h"
#include "exec/sort_scan.h"
#include "storage/external_sorter.h"
#include "storage/temp_file.h"

namespace csm {

namespace {

/// The append-maintainable aggregate kinds. count/sum/min/max merge
/// partial states losslessly (distributive); avg is algebraic over its
/// sum+count registers; min/max qualify only because appends never remove
/// rows; kNone (the match-join region enumerator) has trivial state.
bool SelfMaintainableKind(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kAvg:
    case AggKind::kNone:
      return true;
    default:
      return false;
  }
}

std::string HolisticReason(AggKind kind) {
  if (kind == AggKind::kCountDistinct) {
    return "count_distinct is holistic (needs the full distinct set)";
  }
  return std::string(AggKindName(kind)) +
         " accumulates in row order (Welford), so a merged state is not "
         "bit-identical to a re-scan";
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::string_view DeltaClassName(DeltaClass cls) {
  switch (cls) {
    case DeltaClass::kSelfMaintainable:
      return "self-maintainable";
    case DeltaClass::kDerived:
      return "derived";
    case DeltaClass::kRecompute:
      return "recompute";
  }
  return "?";
}

Result<DeltaPlan> DeltaPlan::Build(const Workflow& workflow) {
  DeltaPlan plan;
  std::map<std::string, DeltaClass> cls_by_name;
  for (const MeasureDef& def : workflow.measures()) {
    DeltaMeasurePlan entry;
    entry.name = def.name;
    if (def.op == MeasureOp::kBaseAgg) {
      if (SelfMaintainableKind(def.agg.kind)) {
        entry.cls = DeltaClass::kSelfMaintainable;
        entry.reason =
            def.agg.kind == AggKind::kAvg
                ? "avg maintained via its sum+count registers"
                : std::string(AggKindName(def.agg.kind)) +
                      " merges partial aggregates losslessly under appends";
      } else {
        entry.cls = DeltaClass::kRecompute;
        entry.reason = HolisticReason(def.agg.kind);
      }
    } else {
      entry.cls = DeltaClass::kDerived;
      const std::vector<std::string> inputs = def.Inputs();
      entry.reason = "re-derived from " + JoinNames(inputs) +
                     " when an input table changes";
      for (const std::string& input : inputs) {
        auto it = cls_by_name.find(input);
        if (it == cls_by_name.end()) {
          return Status::Internal("DeltaPlan: measure '" + def.name +
                                  "' references unknown input '" + input +
                                  "'");
        }
        if (it->second == DeltaClass::kRecompute) {
          entry.reason += " (downstream of recompute-class " + input + ")";
          break;
        }
      }
    }
    cls_by_name[entry.name] = entry.cls;
    plan.measures.push_back(std::move(entry));
  }
  return plan;
}

const DeltaMeasurePlan* DeltaPlan::Find(std::string_view name) const {
  for (const DeltaMeasurePlan& entry : measures) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

size_t DeltaPlan::CountClass(DeltaClass cls) const {
  size_t n = 0;
  for (const DeltaMeasurePlan& entry : measures) {
    if (entry.cls == cls) ++n;
  }
  return n;
}

Result<std::unique_ptr<DeltaEvaluator>> DeltaEvaluator::Create(
    const Workflow& workflow, const FactTable& fact,
    const EngineOptions& options) {
  if (workflow.schema() != fact.schema()) {
    return Status::InvalidArgument(
        "DeltaEvaluator: workflow and fact table use different schema "
        "objects");
  }
  auto eval = std::unique_ptr<DeltaEvaluator>(
      new DeltaEvaluator(workflow, options));
  CSM_ASSIGN_OR_RETURN(eval->plan_, DeltaPlan::Build(workflow));

  // Base jobs: one per basic measure, plus one region enumerator per
  // distinct match-join granularity (same layout as the single-scan
  // engine, so derived semantics match the other engines exactly).
  const Schema& schema = *workflow.schema();
  const int d = schema.num_dims();
  const auto fact_vars = FactRowVars(schema);
  for (const MeasureDef& def : eval->workflow_.measures()) {
    if (def.op == MeasureOp::kBaseAgg) {
      BaseJob job;
      job.table_name = def.name;
      job.gran = def.gran;
      job.agg = def.agg;
      job.self_maintainable = SelfMaintainableKind(def.agg.kind);
      job.states = AggTable(def.agg.kind, d);
      if (def.where != nullptr) {
        CSM_ASSIGN_OR_RETURN(job.where,
                             BoundExpr::Bind(*def.where, fact_vars));
        job.has_where = true;
      }
      eval->job_by_name_[def.name] = eval->jobs_.size();
      eval->jobs_.push_back(std::move(job));
    } else if (def.op == MeasureOp::kMatch) {
      auto key = def.gran.levels();
      if (eval->enumerator_by_gran_.find(key) ==
          eval->enumerator_by_gran_.end()) {
        BaseJob job;
        job.table_name = "__regions" + def.gran.ToString(schema);
        job.gran = def.gran;
        job.agg = AggSpec{AggKind::kNone, -1};
        job.self_maintainable = true;
        job.states = AggTable(AggKind::kNone, d);
        eval->enumerator_by_gran_[key] = eval->jobs_.size();
        eval->jobs_.push_back(std::move(job));
      }
    }
  }

  // Seed: one scan feeds every job, then finalize and derive everything.
  std::vector<size_t> all_jobs(eval->jobs_.size());
  for (size_t j = 0; j < all_jobs.size(); ++j) all_jobs[j] = j;
  eval->ScanInto(fact, 0, all_jobs, nullptr);
  for (size_t j = 0; j < eval->jobs_.size(); ++j) eval->MaterializeJob(j);
  for (const MeasureDef& def : eval->workflow_.measures()) {
    if (def.op == MeasureOp::kBaseAgg) continue;
    CSM_RETURN_NOT_OK(eval->DeriveMeasure(def));
  }
  eval->rows_seen_ = fact.num_rows();
  return eval;
}

void DeltaEvaluator::ScanInto(const FactTable& fact, size_t first_row,
                              const std::vector<size_t>& jobs,
                              std::vector<std::vector<RegionKey>>* dirty) {
  const Schema& schema = *workflow_.schema();
  const int d = schema.num_dims();
  const int m = schema.num_measures();
  const Granularity base = Granularity::Base(schema);
  std::vector<double> slots(d + m);
  RegionKey key(d);
  const size_t end = fact.num_rows();
  for (size_t row = first_row; row < end; ++row) {
    const Value* dims = fact.dim_row(row);
    const double* measures = fact.measure_row(row);
    for (size_t pos = 0; pos < jobs.size(); ++pos) {
      BaseJob& job = jobs_[jobs[pos]];
      if (job.has_where) {
        for (int i = 0; i < d; ++i) slots[i] = static_cast<double>(dims[i]);
        for (int i = 0; i < m; ++i) slots[d + i] = measures[i];
        if (!job.where.EvalBool(slots.data())) continue;
      }
      GeneralizeKeyInto(schema, dims, base, job.gran, &key);
      job.states.Update(key.data(),
                        job.agg.arg >= 0 ? measures[job.agg.arg] : 1.0);
      if (dirty != nullptr) {
        std::vector<RegionKey>& keys = (*dirty)[pos];
        // The delta arrives sorted, so consecutive rows usually hit the
        // same region; recording only transitions keeps the dirty list
        // near the true dirty-region count.
        if (keys.empty() || keys.back() != key) keys.push_back(key);
      }
    }
  }
}

void DeltaEvaluator::MaterializeJob(size_t j) {
  BaseJob& job = jobs_[j];
  MeasureTable table(workflow_.schema(), job.gran, job.table_name);
  table.Reserve(job.states.size());
  // Non-destructive finalize: unlike AggTable::Materialize, the states
  // must survive — they are the retained snapshot future appends merge
  // into.
  job.states.map().ForEach([&](const Value* key, AggState& state) {
    table.Append(key, AggFinalize(job.states.kind(), state));
  });
  table.SortByKeyLex();
  tables_.insert_or_assign(job.table_name, std::move(table));
}

size_t DeltaEvaluator::PatchJob(size_t j, std::vector<RegionKey>& dirty) {
  BaseJob& job = jobs_[j];
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  if (dirty.empty()) return 0;
  auto it = tables_.find(job.table_name);
  CSM_CHECK(it != tables_.end());
  MeasureTable& table = it->second;
  const int d = table.num_dims();
  // Rows past this point are regions appended below; searching only the
  // prefix keeps the binary search over a sorted range (dirty keys are
  // deduplicated, so a key appended this round is never searched again).
  const size_t sorted_rows = table.num_rows();
  for (const RegionKey& key : dirty) {
    const AggState* state = job.states.map().Find(key.data());
    CSM_CHECK(state != nullptr);  // the delta scan just touched it
    const double value = AggFinalize(job.states.kind(), *state);
    // Binary search the lex-sorted prefix for the dirty region.
    size_t lo = 0, hi = sorted_rows;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (CompareKeys(table.key_row(mid), key.data(), d) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < sorted_rows &&
        CompareKeys(table.key_row(lo), key.data(), d) == 0) {
      table.set_value(lo, value);  // re-finalize in place
    } else {
      table.Append(key, value);  // region born in this delta
    }
  }
  if (table.num_rows() > sorted_rows) table.SortByKeyLex();
  return dirty.size();
}

Status DeltaEvaluator::DeriveMeasure(const MeasureDef& def) {
  // Mirrors the single-scan engine's combine phase, so derived measures
  // keep identical semantics across the full and incremental paths.
  switch (def.op) {
    case MeasureOp::kBaseAgg:
      return Status::OK();
    case MeasureOp::kRollup: {
      auto in = tables_.find(def.input);
      CSM_CHECK(in != tables_.end());
      const MeasureTable* source = &in->second;
      MeasureTable filtered(workflow_.schema(), source->granularity(),
                            source->name());
      if (def.where != nullptr) {
        CSM_ASSIGN_OR_RETURN(
            filtered,
            FilterMeasure(*source, *def.where, nullptr, source->name()));
        source = &filtered;
      }
      AggSpec agg = def.agg;
      if (agg.arg > 0) agg.arg = 0;
      CSM_ASSIGN_OR_RETURN(MeasureTable result,
                           HashRollup(*source, def.gran, agg, def.name));
      result.SortByKeyLex();
      tables_.insert_or_assign(def.name, std::move(result));
      return Status::OK();
    }
    case MeasureOp::kMatch: {
      auto in = tables_.find(def.input);
      CSM_CHECK(in != tables_.end());
      const size_t enum_idx = enumerator_by_gran_.at(def.gran.levels());
      const MeasureTable& regions =
          tables_.at(jobs_[enum_idx].table_name);
      const MeasureTable* target = &in->second;
      MeasureTable filtered(workflow_.schema(), target->granularity(),
                            target->name());
      if (def.where != nullptr) {
        CSM_ASSIGN_OR_RETURN(
            filtered,
            FilterMeasure(*target, *def.where, nullptr, target->name()));
        target = &filtered;
      }
      AggSpec agg = def.agg;
      if (agg.arg > 0) agg.arg = 0;
      CSM_ASSIGN_OR_RETURN(
          MeasureTable result,
          HashMatchJoin(regions, *target, def.match, agg, def.name));
      result.SortByKeyLex();
      tables_.insert_or_assign(def.name, std::move(result));
      return Status::OK();
    }
    case MeasureOp::kCombine: {
      std::vector<const MeasureTable*> inputs;
      for (const std::string& name : def.combine_inputs) {
        auto it = tables_.find(name);
        CSM_CHECK(it != tables_.end());
        inputs.push_back(&it->second);
      }
      CSM_ASSIGN_OR_RETURN(MeasureTable result,
                           HashCombine(inputs, *def.fc, def.name));
      result.SortByKeyLex();
      tables_.insert_or_assign(def.name, std::move(result));
      return Status::OK();
    }
  }
  return Status::Internal("DeriveMeasure: unknown op");
}

Result<DeltaReport> DeltaEvaluator::ApplyAppend(const FactTable& fact,
                                                size_t first_row,
                                                Tracer* tracer,
                                                SpanId parent) {
  if (first_row != rows_seen_ || first_row > fact.num_rows()) {
    return Status::InvalidArgument(
        "DeltaEvaluator::ApplyAppend: expected delta to start at row " +
        std::to_string(rows_seen_) + ", got first_row=" +
        std::to_string(first_row) + " of " +
        std::to_string(fact.num_rows()) + " rows");
  }
  DeltaReport report;
  report.delta_rows = fact.num_rows() - first_row;
  ScopedSpan span(tracer, "delta.apply", parent);

  std::vector<std::string> changed;  // table names refreshed this round
  if (report.delta_rows > 0) {
    // Sort ONLY the appended rows: updates then arrive clustered per
    // region (the sort/scan locality argument applied to the delta), and
    // the dirty list stays near the true dirty-region count.
    FactTable delta(fact.schema());
    delta.Reserve(report.delta_rows);
    for (size_t row = first_row; row < fact.num_rows(); ++row) {
      delta.AppendRow(fact.dim_row(row), fact.measure_row(row));
    }
    const SortKey delta_key =
        options_.sort_key.empty()
            ? SortScanEngine::DefaultSortKey(workflow_)
            : options_.sort_key;
    CSM_ASSIGN_OR_RETURN(TempDir temp, TempDir::Make(options_.temp_dir));
    SortOptions sort_options;
    sort_options.memory_budget_bytes = options_.memory_budget_bytes;
    sort_options.temp_dir = &temp;
    sort_options.threads = options_.parallel_threads;
    CSM_ASSIGN_OR_RETURN(
        FactTable sorted,
        SortFactTable(std::move(delta), delta_key, sort_options, nullptr));

    // Self-maintainable jobs: merge the delta into the retained states
    // and re-finalize only the dirty regions.
    std::vector<size_t> sm_jobs, rescan_jobs;
    for (size_t j = 0; j < jobs_.size(); ++j) {
      (jobs_[j].self_maintainable ? sm_jobs : rescan_jobs).push_back(j);
    }
    std::vector<std::vector<RegionKey>> dirty(sm_jobs.size());
    ScanInto(sorted, 0, sm_jobs, &dirty);
    for (size_t pos = 0; pos < sm_jobs.size(); ++pos) {
      const size_t patched = PatchJob(sm_jobs[pos], dirty[pos]);
      if (patched > 0) {
        report.dirty_regions += patched;
        ++report.patched_measures;
        changed.push_back(jobs_[sm_jobs[pos]].table_name);
      }
    }

    // Recompute-class jobs: per-measure fallback — fresh states, full
    // re-scan, full re-materialize. Never drags the whole query with it.
    for (size_t j : rescan_jobs) {
      BaseJob& job = jobs_[j];
      job.states = AggTable(job.agg.kind, job.states.key_width());
      ScanInto(fact, 0, {j}, nullptr);
      MaterializeJob(j);
      ++report.recomputed_measures;
      changed.push_back(job.table_name);
    }
  }

  // Derived measures, in dependency order: re-derive iff an input table
  // (for match joins: the region enumerator too) changed this round.
  for (const MeasureDef& def : workflow_.measures()) {
    if (def.op == MeasureOp::kBaseAgg) continue;
    std::vector<std::string> inputs = def.Inputs();
    if (def.op == MeasureOp::kMatch) {
      const size_t enum_idx = enumerator_by_gran_.at(def.gran.levels());
      inputs.push_back(jobs_[enum_idx].table_name);
    }
    const bool input_changed =
        std::any_of(inputs.begin(), inputs.end(), [&](const auto& name) {
          return std::find(changed.begin(), changed.end(), name) !=
                 changed.end();
        });
    if (!input_changed) continue;
    CSM_RETURN_NOT_OK(DeriveMeasure(def));
    changed.push_back(def.name);
    ++report.recomputed_measures;
  }

  rows_seen_ = fact.num_rows();
  span.SetAttr("delta_rows", std::to_string(report.delta_rows));
  span.SetAttr("dirty_regions", std::to_string(report.dirty_regions));
  span.SetAttr("patched_measures", std::to_string(report.patched_measures));
  span.SetAttr("recomputed_measures",
               std::to_string(report.recomputed_measures));
  return report;
}

const MeasureTable* DeltaEvaluator::FindTable(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : &it->second;
}

EvalOutput DeltaEvaluator::Output(bool include_hidden) const {
  EvalOutput out;
  for (const MeasureDef& def : workflow_.measures()) {
    if (!def.is_output && !include_hidden) continue;
    auto it = tables_.find(def.name);
    CSM_CHECK(it != tables_.end());
    out.tables.emplace(def.name, it->second.Clone());
  }
  return out;
}

}  // namespace csm
