#ifndef CSM_EXEC_SESSION_H_
#define CSM_EXEC_SESSION_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/delta.h"
#include "exec/engine.h"
#include "exec/factory.h"
#include "storage/fact_table.h"
#include "workflow/fuse.h"
#include "workflow/workflow.h"

namespace csm {

struct ExecContext;

/// Session-level knobs, on top of the per-run EngineOptions.
struct SessionOptions {
  /// Tuning for the fused engine run (and, at Create time, the options
  /// MakeEngine validates). An empty sort_key lets the session plan one
  /// order for the combined workflow (src/opt, §6).
  EngineOptions engine_options;

  /// Demultiplex hidden (intermediate) measures back to each query too.
  bool include_hidden = false;

  /// Result-cache capacity in entries (queries). 0 disables the cache.
  size_t cache_capacity = 0;

  /// Keep incremental-maintenance state (exec/delta.h) next to each cache
  /// entry, so AppendAndRefresh patches cached results in place instead of
  /// invalidating them. Costs one extra fact scan per cached query at
  /// insert time plus the retained per-region aggregate snapshots, which
  /// is why it is opt-in.
  bool delta_patching = false;
};

/// What the last RunPending did — fusion and cache effectiveness.
struct SessionReport {
  size_t queries = 0;          // queries in the batch
  size_t total_measures = 0;   // sum of their measure counts
  size_t fused_measures = 0;   // measures the fused run executed
  size_t shared_measures = 0;  // deduplicated against an earlier query
  size_t cache_hits = 0;       // queries served from the result cache
  size_t cache_misses = 0;     // queries that joined the fused run
  ExecStats run_stats;         // the single fused run (zeros on all-hit)
};

/// What one AppendAndRefresh did to the fact table and the cache.
struct SessionAppendReport {
  size_t delta_rows = 0;           // rows appended to the fact table
  size_t patched_queries = 0;      // cache entries delta-patched in place
  size_t dropped_queries = 0;      // entries invalidated (no delta state)
  size_t dirty_regions = 0;        // regions re-finalized (all entries)
  size_t patched_measures = 0;     // self-maintainable tables patched
  size_t recomputed_measures = 0;  // holistic re-scans + derived refreshes
};

/// A multi-query session over one fact table (the shared-scan argument of
/// §5 lifted across queries): Submit N workflows, RunPending fuses them —
/// deduplicating structurally identical measures via fingerprints
/// (workflow/fuse.h) — plans ONE sort order for the combined DAG, runs
/// the engine ONCE, and demultiplexes the output tables back into one
/// EvalOutput per query under the queries' own measure names.
///
/// Results are bit-identical to running each workflow through its own
/// Engine::Run: fusion only renames measures and shares identical
/// subgraphs, never changes what is computed (the differential fuzzer's
/// session cells check exactly this).
///
/// An optional fingerprint-keyed LRU cache short-circuits repeated
/// queries: the key is (QueryFingerprint, FactTable::ContentHash()), so
/// entries invalidate themselves when the fact table's content changes.
/// Cache hits keep the ExecStats of the run that produced the entry.
///
/// With options.delta_patching on, each cached entry additionally carries
/// a DeltaEvaluator — the retained per-region aggregate state of its
/// query — and AppendAndRefresh turns a fact-table append from "every
/// entry misses" into "every entry is patched": self-maintainable
/// measures merge the sorted delta into their retained state and
/// re-finalize only dirty regions; holistic measures re-scan; derived
/// measures re-derive from their updated inputs. Delta-maintained entries
/// are produced by the same measure-op kernels the single-scan engine
/// uses, so they agree with a fresh engine run exactly on integer-valued
/// measures and within floating-point reassociation otherwise (the
/// differential fuzzer's +append cells enforce this).
///
/// Thread safety: Submit may be called concurrently with other Submits
/// and with RunPending (late submissions land in the next batch).
/// RunPending itself may also run concurrently — each call drains the
/// batch that existed when it started. AppendAndRefresh takes an
/// exclusive data lock that RunPending shares, so concurrent queries see
/// either the pre-append or the post-append fact table and cache — never
/// a torn mix. The session is not movable.
class QuerySession {
 public:
  /// Builds the engine via MakeEngine (validating
  /// options.engine_options) and wraps it in a session.
  static Result<std::unique_ptr<QuerySession>> Create(
      EngineKind kind, SessionOptions options = SessionOptions{});

  QuerySession(std::unique_ptr<Engine> engine,
               SessionOptions options = SessionOptions{});

  /// Queues one workflow; returns its index within the current batch
  /// (= its position in the vector RunPending returns). All workflows of
  /// a batch must share the first one's schema object, and must have at
  /// least one measure.
  Result<size_t> Submit(Workflow workflow);

  /// Queued queries not yet run.
  size_t num_pending() const;

  /// Fuses and runs every pending query over `fact`; returns one
  /// EvalOutput per query in Submit order. The convenience overload runs
  /// under a default context carrying options.engine_options; the other
  /// respects the caller's tracer / cancellation / tuning, opening the
  /// fused run plus one bookkeeping span per query under a shared
  /// "session" root span.
  Result<std::vector<EvalOutput>> RunPending(const FactTable& fact);
  Result<std::vector<EvalOutput>> RunPending(const FactTable& fact,
                                             ExecContext& ctx);

  /// Appends `delta`'s rows to `fact` (which must be the table the cached
  /// entries were computed over) and refreshes the result cache: entries
  /// carrying delta state are patched in place and re-keyed to the new
  /// ContentHash; entries without it are dropped. Runs under an exclusive
  /// lock against RunPending, so a concurrent query sees the append as
  /// atomic. Opens a "session.append" span with delta_rows /
  /// dirty_regions / patched_measures attributes.
  Result<SessionAppendReport> AppendAndRefresh(FactTable& fact,
                                               const FactTable& delta);
  Result<SessionAppendReport> AppendAndRefresh(FactTable& fact,
                                               const FactTable& delta,
                                               ExecContext& ctx);

  /// Fusion/cache report for the most recent RunPending.
  SessionReport last_report() const;

  size_t cache_size() const;
  void ClearCache();

 private:
  using CacheKey = std::pair<uint64_t, uint64_t>;  // (query fp, fact hash)
  struct CacheEntry {
    CacheKey key;
    EvalOutput output;  // tables under the query's own measure names
    /// Retained incremental state (null without delta_patching or when
    /// building it failed — such entries drop on append instead).
    std::unique_ptr<DeltaEvaluator> delta;
  };

  /// Deep copy (MeasureTable has no copy constructor).
  static EvalOutput CloneOutput(const EvalOutput& src);

  /// LRU get/put; callers hold mu_. Insert adopts `delta` (may be null);
  /// delta-backed entries cache the evaluator's own output so patched and
  /// untouched values stay internally consistent.
  const EvalOutput* CacheLookup(const CacheKey& key);
  void CacheInsert(const CacheKey& key, const EvalOutput& output,
                   std::unique_ptr<DeltaEvaluator> delta);

  std::unique_ptr<Engine> engine_;
  SessionOptions options_;

  /// Serializes AppendAndRefresh (exclusive) against RunPending (shared):
  /// queries observe appends atomically. Acquired before mu_.
  mutable std::shared_mutex data_mu_;

  mutable std::mutex mu_;
  std::vector<Workflow> pending_;
  std::list<CacheEntry> cache_;  // most recently used first
  std::map<CacheKey, std::list<CacheEntry>::iterator> cache_index_;
  SessionReport report_;
};

}  // namespace csm

#endif  // CSM_EXEC_SESSION_H_
