#ifndef CSM_EXEC_SESSION_H_
#define CSM_EXEC_SESSION_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/engine.h"
#include "exec/factory.h"
#include "storage/fact_table.h"
#include "workflow/fuse.h"
#include "workflow/workflow.h"

namespace csm {

struct ExecContext;

/// Session-level knobs, on top of the per-run EngineOptions.
struct SessionOptions {
  /// Tuning for the fused engine run (and, at Create time, the options
  /// MakeEngine validates). An empty sort_key lets the session plan one
  /// order for the combined workflow (src/opt, §6).
  EngineOptions engine_options;

  /// Demultiplex hidden (intermediate) measures back to each query too.
  bool include_hidden = false;

  /// Result-cache capacity in entries (queries). 0 disables the cache.
  size_t cache_capacity = 0;
};

/// What the last RunPending did — fusion and cache effectiveness.
struct SessionReport {
  size_t queries = 0;          // queries in the batch
  size_t total_measures = 0;   // sum of their measure counts
  size_t fused_measures = 0;   // measures the fused run executed
  size_t shared_measures = 0;  // deduplicated against an earlier query
  size_t cache_hits = 0;       // queries served from the result cache
  size_t cache_misses = 0;     // queries that joined the fused run
  ExecStats run_stats;         // the single fused run (zeros on all-hit)
};

/// A multi-query session over one fact table (the shared-scan argument of
/// §5 lifted across queries): Submit N workflows, RunPending fuses them —
/// deduplicating structurally identical measures via fingerprints
/// (workflow/fuse.h) — plans ONE sort order for the combined DAG, runs
/// the engine ONCE, and demultiplexes the output tables back into one
/// EvalOutput per query under the queries' own measure names.
///
/// Results are bit-identical to running each workflow through its own
/// Engine::Run: fusion only renames measures and shares identical
/// subgraphs, never changes what is computed (the differential fuzzer's
/// session cells check exactly this).
///
/// An optional fingerprint-keyed LRU cache short-circuits repeated
/// queries: the key is (QueryFingerprint, FactTable::ContentHash()), so
/// entries invalidate themselves when the fact table's content changes.
/// Cache hits keep the ExecStats of the run that produced the entry.
///
/// Thread safety: Submit may be called concurrently with other Submits
/// and with RunPending (late submissions land in the next batch).
/// RunPending itself may also run concurrently — each call drains the
/// batch that existed when it started. The session is not movable.
class QuerySession {
 public:
  /// Builds the engine via MakeEngine (validating
  /// options.engine_options) and wraps it in a session.
  static Result<std::unique_ptr<QuerySession>> Create(
      EngineKind kind, SessionOptions options = SessionOptions{});

  QuerySession(std::unique_ptr<Engine> engine,
               SessionOptions options = SessionOptions{});

  /// Queues one workflow; returns its index within the current batch
  /// (= its position in the vector RunPending returns). All workflows of
  /// a batch must share the first one's schema object, and must have at
  /// least one measure.
  Result<size_t> Submit(Workflow workflow);

  /// Queued queries not yet run.
  size_t num_pending() const;

  /// Fuses and runs every pending query over `fact`; returns one
  /// EvalOutput per query in Submit order. The convenience overload runs
  /// under a default context carrying options.engine_options; the other
  /// respects the caller's tracer / cancellation / tuning, opening the
  /// fused run plus one bookkeeping span per query under a shared
  /// "session" root span.
  Result<std::vector<EvalOutput>> RunPending(const FactTable& fact);
  Result<std::vector<EvalOutput>> RunPending(const FactTable& fact,
                                             ExecContext& ctx);

  /// Fusion/cache report for the most recent RunPending.
  SessionReport last_report() const;

  size_t cache_size() const;
  void ClearCache();

 private:
  using CacheKey = std::pair<uint64_t, uint64_t>;  // (query fp, fact hash)
  struct CacheEntry {
    CacheKey key;
    EvalOutput output;  // tables under the query's own measure names
  };

  /// Deep copy (MeasureTable has no copy constructor).
  static EvalOutput CloneOutput(const EvalOutput& src);

  /// LRU get/put; callers hold mu_.
  const EvalOutput* CacheLookup(const CacheKey& key);
  void CacheInsert(const CacheKey& key, const EvalOutput& output);

  std::unique_ptr<Engine> engine_;
  SessionOptions options_;

  mutable std::mutex mu_;
  std::vector<Workflow> pending_;
  std::list<CacheEntry> cache_;  // most recently used first
  std::map<CacheKey, std::list<CacheEntry>::iterator> cache_index_;
  SessionReport report_;
};

}  // namespace csm

#endif  // CSM_EXEC_SESSION_H_
