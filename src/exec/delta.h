#ifndef CSM_EXEC_DELTA_H_
#define CSM_EXEC_DELTA_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "exec/agg_table.h"
#include "exec/engine.h"
#include "expr/scalar_expr.h"
#include "obs/trace.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"
#include "workflow/workflow.h"

namespace csm {

/// Incremental (append-only) maintenance of a workflow's measures — the
/// classic view-maintenance split applied to composite subset measures:
/// distributive/algebraic base aggregates are *self-maintainable* under
/// appends (merge the delta into retained per-region AggState and
/// re-finalize only the dirty regions), holistic base aggregates are not
/// (their state cannot be reconstructed without the history), and derived
/// measures (roll-up / match / combine arcs) are re-derived from their —
/// already updated — input tables, whose size is bounded by the region
/// sets, not by the fact stream.

/// How one measure is maintained when rows are appended.
enum class DeltaClass {
  /// Base aggregate with a distributive/algebraic kind (count, sum, min,
  /// max, avg — avg via its sum+count registers, min/max because appends
  /// never delete): fold the delta rows into retained AggStates and
  /// re-finalize dirty regions only.
  kSelfMaintainable,
  /// Roll-up / match / combine measure: recomputed from its input measure
  /// tables after those are refreshed. Cost scales with the input region
  /// sets, not with the fact table.
  kDerived,
  /// Base aggregate whose result is not append-maintainable bit-for-bit
  /// (count_distinct is holistic; var/stddev accumulate in row order):
  /// full re-scan of the fact table for this one measure. The fallback is
  /// always per-measure, never per-query.
  kRecompute,
};

std::string_view DeltaClassName(DeltaClass cls);

/// Classification of one measure, with a human-readable justification
/// (surfaced by csm_query --append and the docs' classification table).
struct DeltaMeasurePlan {
  std::string name;
  DeltaClass cls = DeltaClass::kSelfMaintainable;
  std::string reason;
};

/// Static per-measure maintenance plan for a workflow.
struct DeltaPlan {
  static Result<DeltaPlan> Build(const Workflow& workflow);

  const DeltaMeasurePlan* Find(std::string_view name) const;
  size_t CountClass(DeltaClass cls) const;

  std::vector<DeltaMeasurePlan> measures;  // workflow definition order
};

/// What one ApplyAppend did, mirrored into `delta_rows` /
/// `dirty_regions` / `patched_measures` span attributes.
struct DeltaReport {
  size_t delta_rows = 0;          // appended rows folded in
  size_t dirty_regions = 0;       // regions re-finalized across SM tables
  size_t patched_measures = 0;    // self-maintainable tables patched
  size_t recomputed_measures = 0; // holistic re-scans + derived re-derives
};

/// Holds a workflow's complete evaluation state — every measure table
/// (hidden ones and match-join region enumerators included) plus the
/// retained AggTable snapshot behind each self-maintainable base measure —
/// and patches it in place when the fact table grows.
///
/// ApplyAppend sorts only the appended rows (so per-region updates arrive
/// clustered, the sort/scan engine's locality argument applied to the
/// delta), merges them into the retained state, re-finalizes only the
/// regions the delta touched, then refreshes recompute-class measures
/// from the full table and derived measures from their inputs — skipping
/// any measure whose inputs did not change.
///
/// Results are exact for integer-valued measures (any fold order sums the
/// same); for general doubles the patched values agree with a from-scratch
/// evaluation up to floating-point reassociation, the same tolerance the
/// differential fuzzer grants every engine.
class DeltaEvaluator {
 public:
  /// Builds the plan, scans `fact` once to seed the retained aggregate
  /// state, and evaluates every measure. `options` supplies the sort
  /// budget / temp dir / explicit sort key used for delta sorting.
  static Result<std::unique_ptr<DeltaEvaluator>> Create(
      const Workflow& workflow, const FactTable& fact,
      const EngineOptions& options = EngineOptions{});

  /// Folds rows [first_row, fact.num_rows()) — `fact` must be the table
  /// Create() saw plus appended rows — into the retained state and
  /// patches every measure table. Span attributes land under `parent`
  /// when `tracer` is set.
  Result<DeltaReport> ApplyAppend(const FactTable& fact, size_t first_row,
                                  Tracer* tracer = nullptr,
                                  SpanId parent = kNoSpan);

  const DeltaPlan& plan() const { return plan_; }

  /// Rows folded in so far (initial + all appends).
  size_t rows_seen() const { return rows_seen_; }

  /// The named measure's current table, nullptr if unknown.
  const MeasureTable* FindTable(std::string_view name) const;

  /// Current tables of the workflow's measures as an engine-style output
  /// (deep copy; hidden measures included on request). `stats` is zeroed —
  /// there was no engine run.
  EvalOutput Output(bool include_hidden) const;

 private:
  /// One base-granularity hash table maintained over the fact stream:
  /// either a user-declared basic measure or the implicit region
  /// enumerator behind a match join.
  struct BaseJob {
    std::string table_name;
    Granularity gran;
    AggSpec agg;
    BoundExpr where;
    bool has_where = false;
    bool self_maintainable = false;  // retained states survive appends
    AggTable states;
  };

  DeltaEvaluator(Workflow workflow, EngineOptions options)
      : workflow_(std::move(workflow)), options_(std::move(options)) {}

  /// Streams rows [first_row, fact.num_rows()) into the base jobs;
  /// `jobs` selects which (self-maintainable vs recompute). Appends each
  /// touched region key of job i to (*dirty)[i] when `dirty` is set.
  void ScanInto(const FactTable& fact, size_t first_row,
                const std::vector<size_t>& jobs,
                std::vector<std::vector<RegionKey>>* dirty);

  /// Rebuilds job j's table from its states (non-destructive finalize).
  void MaterializeJob(size_t j);

  /// Re-finalizes exactly `dirty` regions of job j into its table;
  /// returns how many regions were patched (deduplicated).
  size_t PatchJob(size_t j, std::vector<RegionKey>& dirty);

  /// Recomputes one derived measure from the current tables.
  Status DeriveMeasure(const MeasureDef& def);

  Workflow workflow_;  // owned: the evaluator outlives the caller's copy
  EngineOptions options_;
  DeltaPlan plan_;
  std::vector<BaseJob> jobs_;
  std::map<std::string, size_t> job_by_name_;
  std::map<std::vector<int>, size_t> enumerator_by_gran_;
  std::map<std::string, MeasureTable> tables_;  // every measure + enums
  size_t rows_seen_ = 0;
};

}  // namespace csm

#endif  // CSM_EXEC_DELTA_H_
