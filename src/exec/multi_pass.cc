#include "exec/multi_pass.h"

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "algebra/measure_ops.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "exec/exec_context.h"
#include "exec/sort_scan.h"
#include "opt/pass_planner.h"

namespace csm {

namespace {

/// Approximate bytes per live hash entry used to translate the byte
/// budget into the planner's entry budget.
constexpr double kBytesPerEntry = 96.0;

/// Cross-operator state of one multi-pass run: the measure tables
/// materialized by the pass stages (consumed by the post-combine stage)
/// plus bookkeeping the final stage reports.
struct MultiPassState {
  // Deferred (post-pass) measure indices into the workflow.
  std::vector<int> post_pass_indices;
  size_t planned_passes = 0;
  // Region enumerator table names for deferred match joins, by gran.
  std::map<std::vector<int>, std::string> post_enum_names;
  // By lower-cased measure name.
  std::map<std::string, MeasureTable> materialized;
  std::string sort_key_label;  // "key1 | key2 | ..." across passes

  void Store(MeasureTable table) {
    materialized.insert_or_assign(ToLower(table.name()),
                                  std::move(table));
  }
  Result<const MeasureTable*> Load(const std::string& name) const {
    auto it = materialized.find(ToLower(name));
    if (it == materialized.end()) {
      return Status::Internal("measure '" + name + "' not materialized");
    }
    return &it->second;
  }
};

/// One Sort/Scan iteration: runs the pass's sub-workflow (with its own
/// sort order) as a nested sort/scan plan under a "pass" span and stores
/// every result table for downstream stages.
class PassOp : public PhysicalOp {
 public:
  PassOp(std::shared_ptr<MultiPassState> state, Workflow sub,
         SortKey sort_key)
      : state_(std::move(state)),
        sub_(std::move(sub)),
        sort_key_(std::move(sort_key)) {}

  std::string_view name() const override { return "pass"; }

  std::string Describe(const Schema& schema) const override {
    return "sort/scan pass over " +
           std::to_string(sub_.measures().size()) + " measure(s), order " +
           (sort_key_.empty() ? std::string("(default)")
                              : sort_key_.ToString(schema));
  }

  Status Run(PlanContext& ctx) override {
    CSM_RETURN_NOT_OK(ctx.exec->CheckCancelled("multi-pass"));
    Tracer& tracer = ctx.tracer();
    ScopedSpan pass_span(&tracer, "pass", ctx.root());
    ExecContext pass_ctx = ctx.scope->Child(pass_span.id());
    pass_ctx.options.sort_key = sort_key_;
    pass_ctx.options.include_hidden = true;
    SortScanEngine engine;
    CSM_ASSIGN_OR_RETURN(EvalOutput pass_out,
                         engine.Run(sub_, *ctx.fact, pass_ctx));

    if (!state_->sort_key_label.empty()) state_->sort_key_label += " | ";
    state_->sort_key_label += pass_out.stats.sort_key;
    for (auto& [name, table] : pass_out.tables) {
      state_->Store(std::move(table));
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<MultiPassState> state_;
  Workflow sub_;
  SortKey sort_key_;
};

/// Combines cross-pass measures with traditional join strategies over the
/// materialized pass outputs, then selects the requested output tables.
class PostCombineOp : public PhysicalOp {
 public:
  explicit PostCombineOp(std::shared_ptr<MultiPassState> state)
      : state_(std::move(state)) {}

  std::string_view name() const override { return "combine"; }

  std::string Describe(const Schema&) const override {
    return "join " + std::to_string(state_->post_pass_indices.size()) +
           " deferred measure(s) over pass outputs, select outputs";
  }

  Status Run(PlanContext& ctx) override {
    CSM_RETURN_NOT_OK(ctx.exec->CheckCancelled("multi-pass combine"));
    const Workflow& workflow = *ctx.workflow;
    Tracer& tracer = ctx.tracer();
    MultiPassState& state = *state_;
    tracer.AddCounter(ctx.root(), "passes",
                      static_cast<double>(state.planned_passes));

    ScopedSpan combine_span(&tracer, "combine", ctx.root());
    for (int idx : state.post_pass_indices) {
      const MeasureDef& def = workflow.measures()[idx];
      switch (def.op) {
        case MeasureOp::kBaseAgg:
          return Status::Internal("base measures are never deferred");
        case MeasureOp::kRollup: {
          CSM_ASSIGN_OR_RETURN(const MeasureTable* input,
                               state.Load(def.input));
          const MeasureTable* source = input;
          MeasureTable filtered(workflow.schema(), input->granularity(),
                                input->name());
          if (def.where != nullptr) {
            CSM_ASSIGN_OR_RETURN(
                filtered, FilterMeasure(*input, *def.where, nullptr,
                                        input->name()));
            source = &filtered;
          }
          AggSpec agg = def.agg;
          if (agg.arg > 0) agg.arg = 0;
          CSM_ASSIGN_OR_RETURN(
              MeasureTable result,
              HashRollup(*source, def.gran, agg, def.name));
          state.Store(std::move(result));
          break;
        }
        case MeasureOp::kMatch: {
          CSM_ASSIGN_OR_RETURN(
              const MeasureTable* regions,
              state.Load(state.post_enum_names.at(def.gran.levels())));
          CSM_ASSIGN_OR_RETURN(const MeasureTable* input,
                               state.Load(def.input));
          const MeasureTable* target = input;
          MeasureTable filtered(workflow.schema(), input->granularity(),
                                input->name());
          if (def.where != nullptr) {
            CSM_ASSIGN_OR_RETURN(
                filtered, FilterMeasure(*input, *def.where, nullptr,
                                        input->name()));
            target = &filtered;
          }
          AggSpec agg = def.agg;
          if (agg.arg > 0) agg.arg = 0;
          CSM_ASSIGN_OR_RETURN(
              MeasureTable result,
              HashMatchJoin(*regions, *target, def.match, agg, def.name));
          state.Store(std::move(result));
          break;
        }
        case MeasureOp::kCombine: {
          std::vector<const MeasureTable*> inputs;
          for (const std::string& name : def.combine_inputs) {
            CSM_ASSIGN_OR_RETURN(const MeasureTable* table,
                                 state.Load(name));
            inputs.push_back(table);
          }
          CSM_ASSIGN_OR_RETURN(MeasureTable result,
                               HashCombine(inputs, *def.fc, def.name));
          state.Store(std::move(result));
          break;
        }
      }
      auto it = state.materialized.find(ToLower(def.name));
      if (it != state.materialized.end()) {
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(it->second.num_rows()));
      }
    }
    combine_span.End();

    // ---- Select the requested outputs.
    for (const MeasureDef& def : workflow.measures()) {
      if (!def.is_output && !ctx.exec->options.include_hidden) continue;
      auto it = state.materialized.find(ToLower(def.name));
      CSM_CHECK(it != state.materialized.end());
      ctx.out->tables.emplace(def.name, std::move(it->second));
      state.materialized.erase(it);
    }
    tracer.SetAttr(ctx.root(), "sort_key", state.sort_key_label);
    return Status::OK();
  }

 private:
  std::shared_ptr<MultiPassState> state_;
};

}  // namespace

Result<PhysicalPlan> BuildMultiPassPlan(const Workflow& workflow,
                                        const EngineOptions& options) {
  const Schema& schema = *workflow.schema();
  const double entry_budget =
      static_cast<double>(options.memory_budget_bytes) / kBytesPerEntry;
  CSM_ASSIGN_OR_RETURN(PassPlan pass_plan,
                       PlanPasses(workflow, entry_budget));

  auto state = std::make_shared<MultiPassState>();
  state->post_pass_indices = pass_plan.post_pass_indices;
  state->planned_passes = pass_plan.passes.size();

  // Region enumerators needed by post-pass match joins must be produced
  // by some pass; attach them to the first pass.
  for (int idx : pass_plan.post_pass_indices) {
    const MeasureDef& def = workflow.measures()[idx];
    if (def.op != MeasureOp::kMatch) continue;
    if (!state->post_enum_names.count(def.gran.levels())) {
      state->post_enum_names[def.gran.levels()] =
          "__regions" + def.gran.ToString(schema);
    }
  }

  PhysicalPlan plan;
  plan.engine = "multi-pass";
  plan.dict_encoding = options.dict_encoding && options.vectorized;
  plan.morsel_rows = options.morsel_rows;
  plan.scan_batch_rows = options.scan_batch_rows;
  plan.threads = options.parallel_threads;
  plan.engine_state = state;

  bool first_pass = true;
  for (const PassPlan::Pass& pass : pass_plan.passes) {
    Workflow sub(workflow.schema());
    for (int idx : pass.measure_indices) {
      MeasureDef def = workflow.measures()[idx];
      def.is_output = true;  // every pass result is materialized
      CSM_RETURN_NOT_OK(sub.AddMeasure(std::move(def)));
    }
    if (first_pass) {
      for (const auto& [levels, name] : state->post_enum_names) {
        MeasureDef enum_def;
        enum_def.name = name;
        enum_def.gran = Granularity(levels);
        enum_def.op = MeasureOp::kBaseAgg;
        enum_def.agg = AggSpec{AggKind::kNone, -1};
        CSM_RETURN_NOT_OK(sub.AddMeasure(std::move(enum_def)));
      }
      first_pass = false;
    }
    if (sub.measures().empty()) continue;
    plan.ops.push_back(
        std::make_unique<PassOp>(state, std::move(sub), pass.sort_key));
  }
  plan.ops.push_back(std::make_unique<PostCombineOp>(state));
  return plan;
}

Result<EvalOutput> MultiPassEngine::Run(const Workflow& workflow,
                                        const FactTable& fact,
                                        ExecContext& ctx) {
  CSM_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       BuildMultiPassPlan(workflow, ctx.options));
  return plan.Execute(workflow, fact, ctx);
}

}  // namespace csm
