#include "exec/multi_pass.h"

#include <map>
#include <set>

#include "algebra/measure_ops.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "exec/exec_context.h"
#include "exec/sort_scan.h"
#include "opt/pass_planner.h"

namespace csm {

namespace {

/// Approximate bytes per live hash entry used to translate the byte
/// budget into the planner's entry budget.
constexpr double kBytesPerEntry = 96.0;

}  // namespace

Result<EvalOutput> MultiPassEngine::Run(const Workflow& workflow,
                                        const FactTable& fact,
                                        ExecContext& ctx) {
  RunScope rs(ctx, name());
  Tracer& tracer = rs.tracer();
  EvalOutput out;
  const Schema& schema = *workflow.schema();

  ScopedSpan plan_span(&tracer, "plan", rs.root());
  const double entry_budget =
      static_cast<double>(ctx.options.memory_budget_bytes) / kBytesPerEntry;
  CSM_ASSIGN_OR_RETURN(PassPlan plan, PlanPasses(workflow, entry_budget));
  plan_span.End();
  tracer.AddCounter(rs.root(), "passes",
                    static_cast<double>(plan.passes.size()));

  // Region enumerators needed by post-pass match joins must be produced by
  // some pass; attach them to the first pass.
  std::map<std::vector<int>, std::string> post_enum_names;
  for (int idx : plan.post_pass_indices) {
    const MeasureDef& def = workflow.measures()[idx];
    if (def.op != MeasureOp::kMatch) continue;
    if (!post_enum_names.count(def.gran.levels())) {
      post_enum_names[def.gran.levels()] =
          "__regions" + def.gran.ToString(schema);
    }
  }

  std::map<std::string, MeasureTable> materialized;  // by lower-cased name
  auto store = [&](MeasureTable table) {
    materialized.insert_or_assign(ToLower(table.name()), std::move(table));
  };
  auto load = [&](const std::string& name) -> Result<const MeasureTable*> {
    auto it = materialized.find(ToLower(name));
    if (it == materialized.end()) {
      return Status::Internal("measure '" + name + "' not materialized");
    }
    return &it->second;
  };

  // ---- Run the Sort/Scan iterations.
  std::string sort_key_label;
  bool first_pass = true;
  for (const PassPlan::Pass& pass : plan.passes) {
    CSM_RETURN_NOT_OK(ctx.CheckCancelled("multi-pass"));
    Workflow sub(workflow.schema());
    for (int idx : pass.measure_indices) {
      MeasureDef def = workflow.measures()[idx];
      def.is_output = true;  // every pass result is materialized
      CSM_RETURN_NOT_OK(sub.AddMeasure(std::move(def)));
    }
    if (first_pass) {
      for (const auto& [levels, name] : post_enum_names) {
        MeasureDef enum_def;
        enum_def.name = name;
        enum_def.gran = Granularity(levels);
        enum_def.op = MeasureOp::kBaseAgg;
        enum_def.agg = AggSpec{AggKind::kNone, -1};
        CSM_RETURN_NOT_OK(sub.AddMeasure(std::move(enum_def)));
      }
      first_pass = false;
    }
    if (sub.measures().empty()) continue;

    ScopedSpan pass_span(&tracer, "pass", rs.root());
    ExecContext pass_ctx = rs.Child(pass_span.id());
    pass_ctx.options.sort_key = pass.sort_key;
    pass_ctx.options.include_hidden = true;
    SortScanEngine engine;
    CSM_ASSIGN_OR_RETURN(EvalOutput pass_out,
                         engine.Run(sub, fact, pass_ctx));

    if (!sort_key_label.empty()) sort_key_label += " | ";
    sort_key_label += pass_out.stats.sort_key;

    for (auto& [name, table] : pass_out.tables) store(std::move(table));
  }

  CSM_RETURN_NOT_OK(ctx.CheckCancelled("multi-pass combine"));

  // ---- Combine cross-pass measures with traditional join strategies.
  ScopedSpan combine_span(&tracer, "combine", rs.root());
  for (int idx : plan.post_pass_indices) {
    const MeasureDef& def = workflow.measures()[idx];
    MeasureTable* stored = nullptr;
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        return Status::Internal("base measures are never deferred");
      case MeasureOp::kRollup: {
        CSM_ASSIGN_OR_RETURN(const MeasureTable* input, load(def.input));
        const MeasureTable* source = input;
        MeasureTable filtered(workflow.schema(), input->granularity(),
                              input->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(filtered,
                               FilterMeasure(*input, *def.where, nullptr,
                                             input->name()));
          source = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashRollup(*source, def.gran, agg, def.name));
        store(std::move(result));
        break;
      }
      case MeasureOp::kMatch: {
        CSM_ASSIGN_OR_RETURN(
            const MeasureTable* regions,
            load(post_enum_names.at(def.gran.levels())));
        CSM_ASSIGN_OR_RETURN(const MeasureTable* input, load(def.input));
        const MeasureTable* target = input;
        MeasureTable filtered(workflow.schema(), input->granularity(),
                              input->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(filtered,
                               FilterMeasure(*input, *def.where, nullptr,
                                             input->name()));
          target = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(
            MeasureTable result,
            HashMatchJoin(*regions, *target, def.match, agg, def.name));
        store(std::move(result));
        break;
      }
      case MeasureOp::kCombine: {
        std::vector<const MeasureTable*> inputs;
        for (const std::string& name : def.combine_inputs) {
          CSM_ASSIGN_OR_RETURN(const MeasureTable* table, load(name));
          inputs.push_back(table);
        }
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashCombine(inputs, *def.fc, def.name));
        store(std::move(result));
        break;
      }
    }
    auto it = materialized.find(ToLower(def.name));
    stored = it != materialized.end() ? &it->second : nullptr;
    if (stored != nullptr) {
      tracer.SetGaugeMax(combine_span.id(),
                         "hash_entries_hw/" + def.name,
                         static_cast<double>(stored->num_rows()));
    }
  }
  combine_span.End();

  // ---- Select the requested outputs.
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output && !ctx.options.include_hidden) continue;
    auto it = materialized.find(ToLower(def.name));
    CSM_CHECK(it != materialized.end());
    out.tables.emplace(def.name, std::move(it->second));
    materialized.erase(it);
  }
  tracer.SetAttr(rs.root(), "sort_key", sort_key_label);
  out.stats = rs.Finish();
  return out;
}

}  // namespace csm
