#include "exec/multi_pass.h"

#include <map>
#include <set>

#include "algebra/measure_ops.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exec/sort_scan.h"
#include "opt/pass_planner.h"

namespace csm {

namespace {

/// Approximate bytes per live hash entry used to translate the byte
/// budget into the planner's entry budget.
constexpr double kBytesPerEntry = 96.0;

}  // namespace

Result<EvalOutput> MultiPassEngine::Run(const Workflow& workflow,
                                        const FactTable& fact) {
  Timer total_timer;
  EvalOutput out;
  const Schema& schema = *workflow.schema();

  const double entry_budget =
      static_cast<double>(options_.memory_budget_bytes) / kBytesPerEntry;
  CSM_ASSIGN_OR_RETURN(PassPlan plan, PlanPasses(workflow, entry_budget));

  // Region enumerators needed by post-pass match joins must be produced by
  // some pass; attach them to the first pass.
  std::map<std::vector<int>, std::string> post_enum_names;
  for (int idx : plan.post_pass_indices) {
    const MeasureDef& def = workflow.measures()[idx];
    if (def.op != MeasureOp::kMatch) continue;
    if (!post_enum_names.count(def.gran.levels())) {
      post_enum_names[def.gran.levels()] =
          "__regions" + def.gran.ToString(schema);
    }
  }

  std::map<std::string, MeasureTable> materialized;  // by lower-cased name
  auto store = [&](MeasureTable table) {
    materialized.insert_or_assign(ToLower(table.name()), std::move(table));
  };
  auto load = [&](const std::string& name) -> Result<const MeasureTable*> {
    auto it = materialized.find(ToLower(name));
    if (it == materialized.end()) {
      return Status::Internal("measure '" + name + "' not materialized");
    }
    return &it->second;
  };

  // ---- Run the Sort/Scan iterations.
  bool first_pass = true;
  for (const PassPlan::Pass& pass : plan.passes) {
    Workflow sub(workflow.schema());
    for (int idx : pass.measure_indices) {
      MeasureDef def = workflow.measures()[idx];
      def.is_output = true;  // every pass result is materialized
      CSM_RETURN_NOT_OK(sub.AddMeasure(std::move(def)));
    }
    if (first_pass) {
      for (const auto& [levels, name] : post_enum_names) {
        MeasureDef enum_def;
        enum_def.name = name;
        enum_def.gran = Granularity(levels);
        enum_def.op = MeasureOp::kBaseAgg;
        enum_def.agg = AggSpec{AggKind::kNone, -1};
        CSM_RETURN_NOT_OK(sub.AddMeasure(std::move(enum_def)));
      }
      first_pass = false;
    }
    if (sub.measures().empty()) continue;

    EngineOptions pass_options = options_;
    pass_options.sort_key = pass.sort_key;
    pass_options.include_hidden = true;
    SortScanEngine engine(pass_options);
    CSM_ASSIGN_OR_RETURN(EvalOutput pass_out, engine.Run(sub, fact));

    out.stats.sort_seconds += pass_out.stats.sort_seconds;
    out.stats.scan_seconds += pass_out.stats.scan_seconds;
    out.stats.rows_scanned += pass_out.stats.rows_scanned;
    out.stats.spilled_bytes += pass_out.stats.spilled_bytes;
    out.stats.materialized_rows += pass_out.stats.materialized_rows;
    out.stats.peak_hash_entries = std::max(
        out.stats.peak_hash_entries, pass_out.stats.peak_hash_entries);
    out.stats.peak_hash_bytes = std::max(out.stats.peak_hash_bytes,
                                         pass_out.stats.peak_hash_bytes);
    if (!out.stats.sort_key.empty()) out.stats.sort_key += " | ";
    out.stats.sort_key += pass_out.stats.sort_key;

    for (auto& [name, table] : pass_out.tables) store(std::move(table));
  }
  out.stats.passes = static_cast<int>(plan.passes.size());

  // ---- Combine cross-pass measures with traditional join strategies.
  Timer combine_timer;
  for (int idx : plan.post_pass_indices) {
    const MeasureDef& def = workflow.measures()[idx];
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        return Status::Internal("base measures are never deferred");
      case MeasureOp::kRollup: {
        CSM_ASSIGN_OR_RETURN(const MeasureTable* input, load(def.input));
        const MeasureTable* source = input;
        MeasureTable filtered(workflow.schema(), input->granularity(),
                              input->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(filtered,
                               FilterMeasure(*input, *def.where, nullptr,
                                             input->name()));
          source = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashRollup(*source, def.gran, agg, def.name));
        store(std::move(result));
        break;
      }
      case MeasureOp::kMatch: {
        CSM_ASSIGN_OR_RETURN(
            const MeasureTable* regions,
            load(post_enum_names.at(def.gran.levels())));
        CSM_ASSIGN_OR_RETURN(const MeasureTable* input, load(def.input));
        const MeasureTable* target = input;
        MeasureTable filtered(workflow.schema(), input->granularity(),
                              input->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(filtered,
                               FilterMeasure(*input, *def.where, nullptr,
                                             input->name()));
          target = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(
            MeasureTable result,
            HashMatchJoin(*regions, *target, def.match, agg, def.name));
        store(std::move(result));
        break;
      }
      case MeasureOp::kCombine: {
        std::vector<const MeasureTable*> inputs;
        for (const std::string& name : def.combine_inputs) {
          CSM_ASSIGN_OR_RETURN(const MeasureTable* table, load(name));
          inputs.push_back(table);
        }
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashCombine(inputs, *def.fc, def.name));
        store(std::move(result));
        break;
      }
    }
  }
  out.stats.combine_seconds = combine_timer.Seconds();

  // ---- Select the requested outputs.
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output && !options_.include_hidden) continue;
    auto it = materialized.find(ToLower(def.name));
    CSM_CHECK(it != materialized.end());
    out.tables.emplace(def.name, std::move(it->second));
    materialized.erase(it);
  }
  out.stats.total_seconds = total_timer.Seconds();
  return out;
}

}  // namespace csm
