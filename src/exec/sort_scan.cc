#include "exec/sort_scan.h"

#include <algorithm>
#include <memory>

#include "exec/exec_context.h"
#include "exec/op/emit_op.h"
#include "exec/op/generalize_op.h"
#include "exec/op/propagate_op.h"
#include "exec/op/scan_op.h"
#include "exec/op/vectorize.h"

namespace csm {

SortKey SortScanEngine::DefaultSortKey(const Workflow& workflow) {
  const Schema& schema = *workflow.schema();
  std::vector<SortKeyPart> parts;
  for (int dim = 0; dim < schema.num_dims(); ++dim) {
    const int all = schema.dim(dim).hierarchy->all_level();
    int finest = all;
    for (const MeasureDef& def : workflow.measures()) {
      finest = std::min(finest, def.gran.level(dim));
    }
    if (finest == all) continue;
    parts.push_back({dim, finest});
  }
  return SortKey(std::move(parts));
}

PhysicalPlan BuildSortScanPlan(const Workflow& workflow,
                               const EngineOptions& options,
                               bool file_input) {
  PhysicalPlan plan;
  plan.engine = "sort-scan";
  plan.sort_key = options.sort_key.empty()
                      ? SortScanEngine::DefaultSortKey(workflow)
                      : options.sort_key;
  // File-streamed sorts stay raw: the merged stream is rebuilt row-wise
  // and never carries code columns.
  plan.dict_encoding =
      options.dict_encoding && options.vectorized && !file_input;
  plan.morsel_rows = options.morsel_rows;
  plan.scan_batch_rows = options.scan_batch_rows;
  plan.threads = options.parallel_threads;
  plan.ops.push_back(std::make_unique<ScanOp>(
      file_input ? ScanOp::Mode::kSortFile : ScanOp::Mode::kSortTable));
  plan.ops.push_back(
      std::make_unique<GeneralizeOp>(BuildScanSweep(workflow)));
  plan.ops.push_back(std::make_unique<PropagateOp>(
      ComputeVectorizeInfo(workflow, options)));
  plan.ops.push_back(std::make_unique<EmitOp>(EmitOp::Mode::kCollect));
  return plan;
}

Result<EvalOutput> SortScanEngine::Run(const Workflow& workflow,
                                       const FactTable& fact,
                                       ExecContext& ctx) {
  PhysicalPlan plan = BuildSortScanPlan(workflow, ctx.options,
                                        /*file_input=*/false);
  return plan.Execute(workflow, fact, ctx);
}

Result<EvalOutput> SortScanEngine::RunFile(const Workflow& workflow,
                                           const std::string& fact_path,
                                           ExecContext& ctx) {
  PhysicalPlan plan = BuildSortScanPlan(workflow, ctx.options,
                                        /*file_input=*/true);
  return plan.ExecuteFile(workflow, fact_path, ctx);
}

Result<EvalOutput> SortScanEngine::RunFile(const Workflow& workflow,
                                           const std::string& fact_path) {
  ExecContext ctx;
  return RunFile(workflow, fact_path, ctx);
}

}  // namespace csm
