#ifndef CSM_EXEC_PARALLEL_H_
#define CSM_EXEC_PARALLEL_H_

#include "exec/engine.h"
#include "exec/op/physical_plan.h"

namespace csm {

/// Partitioned parallel sort/scan — the parallel evaluation the paper
/// names as future work ("the approach offers potentially unlimited
/// parallelism and ability to distribute computation", §1).
///
/// The fact table is hash-partitioned on one dimension, at the coarsest
/// non-ALL level any measure uses for it, so every region of every
/// measure lies entirely inside one partition. Each partition then runs
/// the ordinary one-pass sort/scan engine independently (its own sort,
/// scan, watermarks, and flushing) on a worker thread, and the disjoint
/// result tables are concatenated. The worker count comes from
/// EngineOptions::parallel_threads (0 = hardware concurrency).
///
/// A workflow is partition-parallelizable on dimension p iff
///  - every measure keeps p below ALL (otherwise its regions span
///    partitions), and
///  - no sibling window ranges over p (windows cross partition
///    boundaries).
/// `PlanPartitionDim` finds such a dimension (preferring the one with the
/// most distinct values at its coarsest used level) or explains why none
/// exists; Run falls back to the sequential engine in that case.
class ParallelSortScanEngine : public Engine {
 public:
  ParallelSortScanEngine() = default;

  std::string_view name() const override { return "parallel-sort-scan"; }

  using Engine::Run;
  Result<EvalOutput> Run(const Workflow& workflow, const FactTable& fact,
                         ExecContext& ctx) override;

  /// The partitioning decision: dimension index, or NotFound with the
  /// reason no dimension qualifies.
  static Result<int> PlanPartitionDim(const Workflow& workflow);
};

/// Lowers a workflow into the partitioned-parallel pipeline:
/// partition -> shards (one nested sort/scan per shard, run as a task
/// batch on the shared scheduler pool) -> merge. When no dimension
/// qualifies the plan degrades to a single fallback operator running the
/// sequential sort/scan engine, exactly like the engine always has.
PhysicalPlan BuildParallelPlan(const Workflow& workflow,
                               const EngineOptions& options);

}  // namespace csm

#endif  // CSM_EXEC_PARALLEL_H_
