#include "exec/agg_table.h"

namespace csm {

void AggTable::MergeFrom(const AggTable& other) {
  other.map_.ForEach([&](const Value* key, const AggState& state) {
    bool inserted = false;
    AggState& dst = map_.FindOrInsert(key, &inserted);
    if (inserted) AggInit(kind_, &dst);
    AggMerge(kind_, &dst, state);
  });
}

size_t AggTable::ApproxBytes() const {
  size_t bytes = map_.MemoryBytes();
  if (kind_ == AggKind::kCountDistinct) {
    map_.ForEach([&bytes](const Value*, const AggState& s) {
      if (s.distinct) bytes += s.distinct->size() * 16 + 64;
    });
  }
  return bytes;
}

MeasureTable AggTable::Materialize(SchemaPtr schema,
                                   const Granularity& gran,
                                   const std::string& name) {
  MeasureTable table(schema, gran, name);
  table.Reserve(map_.size());
  map_.ForEach([&](const Value* key, AggState& state) {
    table.Append(key, AggFinalize(kind_, state));
  });
  table.SortByKeyLex();
  map_ = FlatKeyMap<AggState>(map_.key_width());
  return table;
}

}  // namespace csm
