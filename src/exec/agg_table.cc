#include "exec/agg_table.h"

namespace csm {

void AggTable::FoldBatch(const Value* keys, const uint64_t* hashes,
                         const double* values, const uint32_t* sel,
                         size_t sel_n) {
  const size_t width = map_.key_width();
  // Prefetch distance: far enough to cover a DRAM load at typical batch
  // fold throughput, near enough that the line is still resident.
  constexpr size_t kWindow = 8;
  for (size_t s = 0; s < sel_n; ++s) {
    if (s + kWindow < sel_n) map_.PrefetchHashed(hashes[s + kWindow]);
    bool inserted = false;
    AggState& state =
        map_.FindOrInsertHashed(keys + s * width, hashes[s], &inserted);
    if (inserted) AggInit(kind_, &state);
    const size_t r = sel != nullptr ? sel[s] : s;
    AggUpdate(kind_, &state, values != nullptr ? values[r] : 1.0);
  }
}

void AggTable::MergeFrom(const AggTable& other) {
  other.map_.ForEach([&](const Value* key, const AggState& state) {
    bool inserted = false;
    AggState& dst = map_.FindOrInsert(key, &inserted);
    if (inserted) AggInit(kind_, &dst);
    AggMerge(kind_, &dst, state);
  });
}

size_t AggTable::ApproxBytes() const {
  size_t bytes = map_.MemoryBytes();
  if (kind_ == AggKind::kCountDistinct) {
    map_.ForEach([&bytes](const Value*, const AggState& s) {
      if (s.distinct) bytes += s.distinct->size() * 16 + 64;
    });
  }
  return bytes;
}

MeasureTable AggTable::Materialize(SchemaPtr schema,
                                   const Granularity& gran,
                                   const std::string& name) {
  MeasureTable table(schema, gran, name);
  table.Reserve(map_.size());
  map_.ForEach([&](const Value* key, AggState& state) {
    table.Append(key, AggFinalize(kind_, state));
  });
  table.SortByKeyLex();
  map_ = FlatKeyMap<AggState>(map_.key_width());
  return table;
}

}  // namespace csm
