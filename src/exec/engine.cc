#include "exec/engine.h"

#include <cinttypes>
#include <cstdio>

#include "common/string_util.h"
#include "exec/exec_context.h"

namespace csm {

std::string ExecStats::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"total_seconds\":%.6f,\"sort_seconds\":%.6f,"
      "\"scan_seconds\":%.6f,\"combine_seconds\":%.6f,"
      "\"rows_scanned\":%" PRIu64 ",\"peak_hash_entries\":%" PRIu64
      ",\"peak_hash_bytes\":%" PRIu64 ",\"spilled_bytes\":%" PRIu64
      ",\"materialized_rows\":%" PRIu64 ",\"passes\":%d",
      total_seconds, sort_seconds, scan_seconds, combine_seconds,
      rows_scanned, peak_hash_entries, peak_hash_bytes, spilled_bytes,
      materialized_rows, passes);
  std::string out = buf;
  out += ",\"sort_key\":\"";
  for (char c : sort_key) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"}";
  return out;
}

std::string ExecStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%.3fs total (sort %.3fs, scan %.3fs, combine %.3fs), "
                "%d pass(es)\n"
                "rows %" PRIu64 " | peak hash %" PRIu64 " entries / %.1f MB"
                " | spilled %.1f MB | materialized %" PRIu64
                " rows | order: %s",
                total_seconds, sort_seconds, scan_seconds, combine_seconds,
                passes, rows_scanned, peak_hash_entries,
                static_cast<double>(peak_hash_bytes) / (1024.0 * 1024.0),
                static_cast<double>(spilled_bytes) / (1024.0 * 1024.0),
                materialized_rows,
                sort_key.empty() ? "(none)" : sort_key.c_str());
  return buf;
}

const MeasureTable* EvalOutput::FindTable(std::string_view name) const {
  // Exact hit first (the common case — callers usually pass the name the
  // engine emitted), then the case-insensitive scan the rest of the
  // measure-name API promises. Maps are output-measure sized, so the
  // scan is a handful of comparisons.
  auto it = tables.find(std::string(name));
  if (it != tables.end()) return &it->second;
  const std::string lower = ToLower(name);
  for (auto& [key, table] : tables) {
    if (ToLower(key) == lower) return &table;
  }
  return nullptr;
}

MeasureTable* EvalOutput::FindTable(std::string_view name) {
  return const_cast<MeasureTable*>(
      static_cast<const EvalOutput*>(this)->FindTable(name));
}

std::vector<std::string> EvalOutput::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables.size());
  for (const auto& [name, table] : tables) names.push_back(name);
  return names;
}

Status EngineOptions::Validate() const {
  if (memory_budget_bytes == 0) {
    return Status::InvalidArgument(
        "EngineOptions: memory_budget_bytes must be > 0 (external-sort "
        "run sizing and pass planning divide by the budget)");
  }
  if (scan_batch_rows == 0) {
    return Status::InvalidArgument(
        "EngineOptions: scan_batch_rows must be > 0 (1 = record-at-a-time "
        "execution)");
  }
  if (parallel_threads < 0) {
    return Status::InvalidArgument(
        "EngineOptions: parallel_threads must be >= 0 (0 = hardware "
        "concurrency), got " + std::to_string(parallel_threads));
  }
  if (parallel_threads > 4096) {
    return Status::InvalidArgument(
        "EngineOptions: parallel_threads must be <= 4096, got " +
        std::to_string(parallel_threads));
  }
  if (morsel_rows == 0) {
    return Status::InvalidArgument(
        "EngineOptions: morsel_rows must be > 0 (it is the unit of "
        "work-stealing in pool-parallel scans)");
  }
  if (morsel_rows > (16u << 20)) {
    return Status::InvalidArgument(
        "EngineOptions: morsel_rows must be <= 16777216, got " +
        std::to_string(morsel_rows));
  }
  return Status::OK();
}

Result<EvalOutput> Engine::Run(const Workflow& workflow,
                               const FactTable& fact) {
  ExecContext ctx;
  return Run(workflow, fact, ctx);
}

}  // namespace csm
