#include "exec/engine.h"

#include <cinttypes>
#include <cstdio>

#include "exec/exec_context.h"

namespace csm {

std::string ExecStats::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"total_seconds\":%.6f,\"sort_seconds\":%.6f,"
      "\"scan_seconds\":%.6f,\"combine_seconds\":%.6f,"
      "\"rows_scanned\":%" PRIu64 ",\"peak_hash_entries\":%" PRIu64
      ",\"peak_hash_bytes\":%" PRIu64 ",\"spilled_bytes\":%" PRIu64
      ",\"materialized_rows\":%" PRIu64 ",\"passes\":%d",
      total_seconds, sort_seconds, scan_seconds, combine_seconds,
      rows_scanned, peak_hash_entries, peak_hash_bytes, spilled_bytes,
      materialized_rows, passes);
  std::string out = buf;
  out += ",\"sort_key\":\"";
  for (char c : sort_key) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"}";
  return out;
}

std::string ExecStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%.3fs total (sort %.3fs, scan %.3fs, combine %.3fs), "
                "%d pass(es)\n"
                "rows %" PRIu64 " | peak hash %" PRIu64 " entries / %.1f MB"
                " | spilled %.1f MB | materialized %" PRIu64
                " rows | order: %s",
                total_seconds, sort_seconds, scan_seconds, combine_seconds,
                passes, rows_scanned, peak_hash_entries,
                static_cast<double>(peak_hash_bytes) / (1024.0 * 1024.0),
                static_cast<double>(spilled_bytes) / (1024.0 * 1024.0),
                materialized_rows,
                sort_key.empty() ? "(none)" : sort_key.c_str());
  return buf;
}

Result<EvalOutput> Engine::Run(const Workflow& workflow,
                               const FactTable& fact) {
  ExecContext ctx;
  return Run(workflow, fact, ctx);
}

}  // namespace csm
