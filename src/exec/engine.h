#ifndef CSM_EXEC_ENGINE_H_
#define CSM_EXEC_ENGINE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "model/sort_key.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"
#include "workflow/workflow.h"

namespace csm {

struct ExecContext;

/// Compatibility summary of a run; the Fig. 6(e) cost-breakdown bench
/// reads sort_seconds/scan_seconds, the memory experiments read
/// peak_hash_entries/bytes.
///
/// Since the observability redesign this is a *view* derived from the
/// span tree recorded by the run's Tracer (see src/obs/trace.h and
/// DeriveExecStats in exec/exec_context.h) — engines no longer fill it
/// field by field.
struct ExecStats {
  double sort_seconds = 0;      // sorting + planning (all passes)
  double scan_seconds = 0;      // scanning + in-memory operator updates
  double combine_seconds = 0;   // post-scan composite evaluation
  double total_seconds = 0;

  uint64_t rows_scanned = 0;           // fact rows consumed (all passes)
  uint64_t peak_hash_entries = 0;      // max simultaneous hash entries
  uint64_t peak_hash_bytes = 0;        // approximate bytes at that point
  uint64_t spilled_bytes = 0;          // sort runs + flushed finalized rows
  uint64_t materialized_rows = 0;      // intermediate rows written to disk
  int passes = 1;
  std::string sort_key;                // human-readable chosen order

  /// One JSON object with every field above.
  std::string ToJson() const;

  /// Two-line human-readable summary (phase timings, then volumes).
  std::string ToString() const;
};

/// Result of running a workflow: the output measure tables by name, plus
/// execution counters.
///
/// Iteration over `tables` is deterministic (std::map, name-sorted) and
/// part of the API contract. Callers should use FindTable / table_names
/// to look up measures rather than poking the map directly — lookup
/// through the map is case-sensitive, while measure names everywhere
/// else in the system (Workflow::Find, the DSL) are case-insensitive;
/// direct `tables.find`/`tables.at` access is deprecated for lookups
/// (docs/architecture.md).
struct EvalOutput {
  std::map<std::string, MeasureTable> tables;
  ExecStats stats;

  /// The named measure table, matched case-insensitively like every
  /// other measure lookup; nullptr when the run did not emit it.
  const MeasureTable* FindTable(std::string_view name) const;
  MeasureTable* FindTable(std::string_view name);

  /// Emitted measure names in deterministic (name-sorted) order.
  std::vector<std::string> table_names() const;
};

/// Engine tuning knobs shared by all engines, carried by ExecContext.
struct EngineOptions {
  /// Working-memory target. The sort/scan engines use it for external-sort
  /// run sizing and the multi-pass planner for pass assignment; the
  /// single-scan engine reports (but cannot bound) its usage.
  size_t memory_budget_bytes = 256ull << 20;

  /// Base directory for scratch files (default: TMPDIR or /tmp).
  std::string temp_dir;

  /// Explicit fact-table sort order for the sort/scan engines. Empty =
  /// let the optimizer choose (brute force over candidate orders, §6).
  SortKey sort_key;

  /// Also return hidden (intermediate) measures.
  bool include_hidden = false;

  /// Sort/scan engine: how many fact records are scanned between
  /// watermark-propagation rounds. Correctness never depends on it —
  /// finalization is merely deferred — so it trades per-record
  /// bookkeeping against peak footprint. Rounds fire at scan-batch
  /// boundaries, so the effective interval is rounded up to a multiple
  /// of scan_batch_rows. See bench/ablation_batch.
  size_t propagation_batch_records = 256;

  /// Rows per RecordBatch in the batched scan pipeline (all engines).
  /// Hierarchy mapping runs as one column sweep per dimension per batch,
  /// so larger batches amortize per-record dispatch; 1 degenerates to
  /// record-at-a-time execution (the differential fuzzer exercises 1 and
  /// other batch-boundary-hostile values against the default).
  size_t scan_batch_rows = 1024;

  /// Executor cap for every pool-parallel stage: morsel scans, the
  /// external sort, and ParallelSortScanEngine shards (0 = hardware
  /// concurrency). Executors come from the shared scheduler pool, so
  /// this bounds concurrency without spawning threads per run.
  int parallel_threads = 0;

  /// Rows per work-stealing morsel in pool-parallel scans. Results are
  /// bit-identical for every thread count and morsel size (partials
  /// merge in morsel index order); the knob only trades scheduling
  /// overhead against steal granularity. See bench/ablation_morsel.
  size_t morsel_rows = 16384;

  /// Columnar kernel execution in the scan stages: where-filters run as
  /// compiled selection-vector kernels (falling back per-expression to
  /// the row interpreter for unsupported shapes), group keys are
  /// encoded and hashed column-wise, and agg tables are probed in bulk
  /// with run detection on sorted input. Results are bit-identical to
  /// the scalar path — the differential fuzzer's `+vec/off` cells prove
  /// it — so this is purely a speed knob (`csm_query --no-vectorize`).
  /// See bench/ablation_vector.
  bool vectorized = true;

  /// Dictionary-encoded execution over the vectorized scan: dimension
  /// columns are encoded once per table into sorted-unique dictionaries
  /// (memoized on the FactTable, extended in place by appends), the
  /// per-batch hierarchy sweep becomes one code→value LUT gather per
  /// column, dimension filters compile to per-dictionary bitsets, and
  /// per-batch zone maps (min/max code) skip whole batches a filter
  /// provably rejects. Results are bit-identical to the raw path — the
  /// fuzzer's `+dict/off` cells prove it — so this is purely a speed
  /// knob (`csm_query --no-dict`). Only active together with
  /// `vectorized` on in-memory tables; file-streamed scans stay raw.
  /// See bench/ablation_dict.
  bool dict_encoding = true;

  /// Rejects option combinations the engines would otherwise silently
  /// misbehave on: a zero memory budget (external sort run sizing and
  /// multi-pass planning divide by it), scan_batch_rows == 0 (the batch
  /// pipeline would spin on empty batches), negative parallel_threads
  /// (0 means hardware concurrency; negatives mean nothing) or more
  /// than 4096 of them (far beyond any real pool, so certainly a bug),
  /// and morsel_rows outside [1, 16M] (0 would spin; beyond 16M no
  /// dataset splits into enough morsels to parallelize). MakeEngine
  /// validates at construction time; call this directly when building
  /// an ExecContext by hand.
  Status Validate() const;
};

/// A query engine: evaluates all measures of an aggregation workflow over
/// a fact table. Implementations: SingleScanEngine (§5.1), SortScanEngine
/// (§5.3), MultiPassEngine (§5.4), RelationalEngine (the paper's DBMS
/// baseline, reimplemented as a sort/merge query processor), plus the
/// AdaptiveEngine / ParallelSortScanEngine wrappers.
///
/// Engines are stateless: tuning (EngineOptions), telemetry (Tracer) and
/// cancellation all flow through the ExecContext argument, so one engine
/// instance can serve concurrent runs with different settings.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string_view name() const = 0;

  /// Evaluates `workflow` over `fact` under `ctx`. The fact table is not
  /// modified (sorting engines work on a copy, as a DBMS would on its own
  /// files). Spans/counters are recorded on ctx.tracer when set; stats in
  /// the result are derived from them either way. Returns
  /// Status::Cancelled when ctx.cancel is set mid-run.
  virtual Result<EvalOutput> Run(const Workflow& workflow,
                                 const FactTable& fact,
                                 ExecContext& ctx) = 0;

  /// Convenience overload: runs with a default context.
  Result<EvalOutput> Run(const Workflow& workflow, const FactTable& fact);
};

}  // namespace csm

#endif  // CSM_EXEC_ENGINE_H_
