#ifndef CSM_EXEC_EXEC_CONTEXT_H_
#define CSM_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <memory>
#include <string_view>

#include "exec/engine.h"
#include "obs/trace.h"

namespace csm {

/// Everything a single Engine::Run needs beyond the query and the data:
/// tuning knobs, the tracer collecting spans/metrics, and a cooperative
/// cancellation flag. Replaces the old pattern of per-engine constructor
/// options — engines are stateless and contexts are per-run.
struct ExecContext {
  EngineOptions options;

  /// Span/metric sink. May be null: the engine then records into a
  /// private tracer just to derive ExecStats, and no telemetry escapes.
  Tracer* tracer = nullptr;

  /// Span under which the engine opens its root span (kNoSpan = the
  /// engine's root is a root of the trace forest). Set by wrapper engines
  /// (adaptive / multi-pass / parallel) when delegating.
  SpanId trace_parent = kNoSpan;

  /// Cooperative cancellation: engines poll this at batch boundaries and
  /// return Status::Cancelled. Null = never cancelled.
  const std::atomic<bool>* cancel = nullptr;

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// OK, or Status::Cancelled mentioning `where`.
  Status CheckCancelled(std::string_view where) const;
};

/// Derives the legacy ExecStats view from the span subtree rooted at
/// `root` (an engine root span): phase buckets from span names, volume
/// counters summed, high-water gauges maxed, sort_key from the root attr.
ExecStats DeriveExecStats(const Tracer& tracer, SpanId root);

/// Per-Run scaffolding used by every engine: guarantees a tracer exists
/// (owning a private one when ctx.tracer is null), opens the engine root
/// span, hands out child contexts for delegated runs, and on Finish()
/// closes the root and derives the ExecStats view. The destructor closes
/// the root span on error paths so exported trees are never left open.
class RunScope {
 public:
  RunScope(const ExecContext& ctx, std::string_view engine_name);
  ~RunScope();
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  Tracer& tracer() { return *tracer_; }
  SpanId root() const { return root_; }

  /// Context for a nested engine run, rooted under `parent` and sharing
  /// this scope's effective tracer, options and cancellation flag.
  ExecContext Child(SpanId parent) const;

  /// Ends the root span and returns the derived stats. Call once.
  ExecStats Finish();

 private:
  const ExecContext* ctx_;
  std::unique_ptr<Tracer> owned_;  // set when ctx.tracer was null
  Tracer* tracer_;
  SpanId root_;
  bool finished_ = false;
};

}  // namespace csm

#endif  // CSM_EXEC_EXEC_CONTEXT_H_
