#ifndef CSM_EXEC_SINGLE_SCAN_H_
#define CSM_EXEC_SINGLE_SCAN_H_

#include "exec/engine.h"
#include "exec/op/physical_plan.h"

namespace csm {

/// The single-scan algorithm (paper §5.1, after [19]): one unsorted pass
/// over the fact table maintains a hash table per basic measure (including
/// the implicit region enumerators of match joins); composite measures are
/// then evaluated in topological order from the fully materialized hash
/// tables.
///
/// Fast when all hash tables fit in memory — and pathological when they do
/// not, which is exactly the trade-off Figs. 6(a) and 7(a) probe. This
/// engine never spills; it reports peak memory so the experiments can show
/// the cliff.
class SingleScanEngine : public Engine {
 public:
  SingleScanEngine() = default;

  std::string_view name() const override { return "single-scan"; }

  using Engine::Run;
  Result<EvalOutput> Run(const Workflow& workflow, const FactTable& fact,
                         ExecContext& ctx) override;
};

/// Lowers a workflow into the single-scan operator pipeline:
/// scan(unsorted) -> generalize -> aggregate -> emit(composite). The
/// aggregate stage is morsel-parallel on the shared scheduler pool.
PhysicalPlan BuildSingleScanPlan(const Workflow& workflow,
                                 const EngineOptions& options);

}  // namespace csm

#endif  // CSM_EXEC_SINGLE_SCAN_H_
