#include "exec/single_scan.h"

#include <unordered_map>

#include "algebra/evaluator.h"
#include "algebra/measure_ops.h"
#include "common/hash.h"
#include "common/logging.h"
#include "exec/exec_context.h"

namespace csm {

namespace {

using StateMap =
    std::unordered_map<std::vector<Value>, AggState, VectorHash>;

/// One hash table maintained during the scan: either a user-declared basic
/// measure or the implicit region enumerator (S_base) of a match join.
struct BaseJob {
  std::string table_name;
  Granularity gran;
  AggSpec agg;
  BoundExpr where;  // empty => no filter
  bool has_where = false;
  StateMap states;
};

size_t StatesBytes(const StateMap& states, int d) {
  // Key vector + state registers + hash bucket overhead, approximate.
  size_t per_entry = sizeof(AggState) +
                     static_cast<size_t>(d) * sizeof(Value) + 48;
  size_t bytes = states.size() * per_entry;
  for (const auto& [k, s] : states) {
    if (s.distinct) bytes += s.distinct->size() * 16;
  }
  return bytes;
}

}  // namespace

Result<EvalOutput> SingleScanEngine::Run(const Workflow& workflow,
                                         const FactTable& fact,
                                         ExecContext& ctx) {
  RunScope rs(ctx, name());
  Tracer& tracer = rs.tracer();
  EvalOutput out;
  const Schema& schema = *workflow.schema();
  const int d = schema.num_dims();
  const int m = schema.num_measures();

  // The scan span also covers job planning: for this engine "scan" is the
  // whole streaming phase, and there is no sort to attribute setup to.
  ScopedSpan scan_span(&tracer, "scan", rs.root());

  // ---- Plan: collect every hash table the scan must maintain.
  std::vector<BaseJob> jobs;
  // Maps a measure name (or synthetic base name) to a job index.
  std::unordered_map<std::string, size_t> job_by_name;
  // Region-enumerator jobs shared across match measures per granularity.
  std::map<std::vector<int>, size_t> enumerator_by_gran;

  const auto fact_vars = FactRowVars(schema);
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op == MeasureOp::kBaseAgg) {
      BaseJob job;
      job.table_name = def.name;
      job.gran = def.gran;
      job.agg = def.agg;
      if (def.where != nullptr) {
        CSM_ASSIGN_OR_RETURN(job.where,
                             BoundExpr::Bind(*def.where, fact_vars));
        job.has_where = true;
      }
      job_by_name[def.name] = jobs.size();
      jobs.push_back(std::move(job));
    } else if (def.op == MeasureOp::kMatch) {
      auto key = def.gran.levels();
      if (enumerator_by_gran.find(key) == enumerator_by_gran.end()) {
        BaseJob job;
        job.table_name = "__regions" + def.gran.ToString(schema);
        job.gran = def.gran;
        job.agg = AggSpec{AggKind::kNone, -1};
        enumerator_by_gran[key] = jobs.size();
        jobs.push_back(std::move(job));
      }
    }
  }

  // ---- The single scan (no sort).
  std::vector<double> slots(d + m);
  RegionKey key(d);
  const Granularity base = Granularity::Base(schema);
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    if ((row & 1023) == 0 && ctx.cancelled()) {
      return ctx.CheckCancelled("single-scan scan");
    }
    const Value* dims = fact.dim_row(row);
    const double* measures = fact.measure_row(row);
    bool slots_filled = false;
    for (BaseJob& job : jobs) {
      if (job.has_where) {
        if (!slots_filled) {
          for (int i = 0; i < d; ++i) {
            slots[i] = static_cast<double>(dims[i]);
          }
          for (int i = 0; i < m; ++i) slots[d + i] = measures[i];
          slots_filled = true;
        }
        if (!job.where.EvalBool(slots.data())) continue;
      }
      GeneralizeKeyInto(schema, dims, base, job.gran, &key);
      auto [it, inserted] = job.states.try_emplace(key);
      if (inserted) AggInit(job.agg.kind, &it->second);
      AggUpdate(job.agg.kind, &it->second,
                job.agg.arg >= 0 ? measures[job.agg.arg] : 1.0);
    }
  }
  tracer.AddCounter(scan_span.id(), "rows_scanned",
                    static_cast<double>(fact.num_rows()));

  // Peak memory: all hash tables coexist at end of scan.
  {
    uint64_t peak_entries = 0;
    uint64_t peak_bytes = 0;
    for (const BaseJob& job : jobs) {
      peak_entries += job.states.size();
      peak_bytes += StatesBytes(job.states, d);
      tracer.SetGaugeMax(scan_span.id(),
                         "hash_entries_hw/" + job.table_name,
                         static_cast<double>(job.states.size()));
    }
    tracer.SetGaugeMax(scan_span.id(), "peak_hash_entries",
                       static_cast<double>(peak_entries));
    tracer.SetGaugeMax(scan_span.id(), "peak_hash_bytes",
                       static_cast<double>(peak_bytes));
  }
  scan_span.End();

  CSM_RETURN_NOT_OK(ctx.CheckCancelled("single-scan combine"));

  // ---- Finalize base tables and evaluate composites.
  ScopedSpan combine_span(&tracer, "combine", rs.root());
  std::map<std::string, MeasureTable> tables;  // all computed measures
  auto materialize = [&](BaseJob& job) {
    MeasureTable table(workflow.schema(), job.gran, job.table_name);
    table.Reserve(job.states.size());
    for (const auto& [k, state] : job.states) {
      table.Append(k.data(), AggFinalize(job.agg.kind, state));
    }
    table.SortByKeyLex();
    job.states.clear();
    return table;
  };
  for (BaseJob& job : jobs) {
    tables.emplace(job.table_name, materialize(job));
  }

  // ---- Composite measures in topological order.
  for (const MeasureDef& def : workflow.measures()) {
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        break;  // already computed
      case MeasureOp::kRollup: {
        auto in = tables.find(def.input);
        CSM_CHECK(in != tables.end());
        const MeasureTable* source = &in->second;
        MeasureTable filtered(workflow.schema(), source->granularity(),
                              source->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(
              filtered, FilterMeasure(*source, *def.where, nullptr,
                                      source->name()));
          source = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashRollup(*source, def.gran, agg, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
      case MeasureOp::kMatch: {
        auto in = tables.find(def.input);
        CSM_CHECK(in != tables.end());
        size_t enum_idx = enumerator_by_gran.at(def.gran.levels());
        const MeasureTable& regions =
            tables.at(jobs[enum_idx].table_name);
        const MeasureTable* target = &in->second;
        MeasureTable filtered(workflow.schema(), target->granularity(),
                              target->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(
              filtered, FilterMeasure(*target, *def.where, nullptr,
                                      target->name()));
          target = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(
            MeasureTable result,
            HashMatchJoin(regions, *target, def.match, agg, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
      case MeasureOp::kCombine: {
        std::vector<const MeasureTable*> inputs;
        for (const std::string& name : def.combine_inputs) {
          auto it = tables.find(name);
          CSM_CHECK(it != tables.end());
          inputs.push_back(&it->second);
        }
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashCombine(inputs, *def.fc, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
    }
  }

  // ---- Keep only requested outputs.
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output && !ctx.options.include_hidden) continue;
    auto it = tables.find(def.name);
    CSM_CHECK(it != tables.end());
    out.tables.emplace(def.name, std::move(it->second));
    tables.erase(it);
  }
  combine_span.End();

  tracer.SetAttr(rs.root(), "sort_key", "(unsorted)");
  out.stats = rs.Finish();
  return out;
}

}  // namespace csm
