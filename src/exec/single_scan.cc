#include "exec/single_scan.h"

#include <unordered_map>

#include "algebra/evaluator.h"
#include "algebra/measure_ops.h"
#include "common/hash.h"
#include "common/logging.h"
#include "exec/agg_table.h"
#include "exec/exec_context.h"
#include "storage/record_batch.h"

namespace csm {

namespace {

/// One hash table maintained during the scan: either a user-declared basic
/// measure or the implicit region enumerator (S_base) of a match join.
struct BaseJob {
  std::string table_name;
  Granularity gran;
  AggSpec agg;
  BoundExpr where;  // empty => no filter
  bool has_where = false;
  AggTable states;
};

}  // namespace

Result<EvalOutput> SingleScanEngine::Run(const Workflow& workflow,
                                         const FactTable& fact,
                                         ExecContext& ctx) {
  RunScope rs(ctx, name());
  Tracer& tracer = rs.tracer();
  EvalOutput out;
  const Schema& schema = *workflow.schema();
  const int d = schema.num_dims();
  const int m = schema.num_measures();

  // The scan span also covers job planning: for this engine "scan" is the
  // whole streaming phase, and there is no sort to attribute setup to.
  ScopedSpan scan_span(&tracer, "scan", rs.root());

  // ---- Plan: collect every hash table the scan must maintain.
  std::vector<BaseJob> jobs;
  // Maps a measure name (or synthetic base name) to a job index.
  std::unordered_map<std::string, size_t> job_by_name;
  // Region-enumerator jobs shared across match measures per granularity.
  std::map<std::vector<int>, size_t> enumerator_by_gran;

  const auto fact_vars = FactRowVars(schema);
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op == MeasureOp::kBaseAgg) {
      BaseJob job;
      job.table_name = def.name;
      job.gran = def.gran;
      job.agg = def.agg;
      job.states = AggTable(def.agg.kind, d);
      if (def.where != nullptr) {
        CSM_ASSIGN_OR_RETURN(job.where,
                             BoundExpr::Bind(*def.where, fact_vars));
        job.has_where = true;
      }
      job_by_name[def.name] = jobs.size();
      jobs.push_back(std::move(job));
    } else if (def.op == MeasureOp::kMatch) {
      auto key = def.gran.levels();
      if (enumerator_by_gran.find(key) == enumerator_by_gran.end()) {
        BaseJob job;
        job.table_name = "__regions" + def.gran.ToString(schema);
        job.gran = def.gran;
        job.agg = AggSpec{AggKind::kNone, -1};
        job.states = AggTable(AggKind::kNone, d);
        enumerator_by_gran[key] = jobs.size();
        jobs.push_back(std::move(job));
      }
    }
  }

  // ---- The single scan (no sort), batch-at-a-time: the fact table is
  // streamed as columnar RecordBatches and hierarchy mapping runs as one
  // column sweep per dimension per distinct job granularity per batch,
  // not per row per job.
  const size_t cap = std::max<size_t>(1, ctx.options.scan_batch_rows);
  struct GranPass {
    Granularity gran;
    std::vector<std::vector<Value>> cols;
    std::vector<Value*> col_ptrs;
  };
  std::vector<GranPass> passes;
  std::vector<size_t> job_pass(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    size_t p = 0;
    while (p < passes.size() && passes[p].gran != jobs[j].gran) ++p;
    if (p == passes.size()) {
      GranPass pass;
      pass.gran = jobs[j].gran;
      pass.cols.assign(d, std::vector<Value>(cap));
      for (auto& col : pass.cols) pass.col_ptrs.push_back(col.data());
      passes.push_back(std::move(pass));
    }
    job_pass[j] = p;
  }

  std::vector<double> slots(d + m);
  RegionKey key(d);
  const Granularity base = Granularity::Base(schema);
  std::unique_ptr<BatchCursor> cursor = MakeFactTableBatchCursor(fact);
  RecordBatch batch(d, m, cap);
  std::vector<const Value*> in_ptrs(d);
  uint64_t batches = 0, adapter_batches = 0;
  for (;;) {
    CSM_ASSIGN_OR_RETURN(size_t n, cursor->NextBatch(&batch));
    if (n == 0) break;
    ++batches;
    if (cursor->per_record_fallback()) ++adapter_batches;
    if (ctx.cancelled()) return ctx.CheckCancelled("single-scan scan");

    for (int i = 0; i < d; ++i) in_ptrs[i] = batch.dim_col(i);
    for (GranPass& pass : passes) {
      GeneralizeColumns(schema, base, pass.gran, in_ptrs.data(), n,
                        pass.col_ptrs.data());
    }

    for (size_t j = 0; j < jobs.size(); ++j) {
      BaseJob& job = jobs[j];
      const GranPass& pass = passes[job_pass[j]];
      const double* arg_col =
          job.agg.arg >= 0 ? batch.measure_col(job.agg.arg) : nullptr;
      for (size_t r = 0; r < n; ++r) {
        if (job.has_where) {
          for (int i = 0; i < d; ++i) {
            slots[i] = static_cast<double>(batch.dim_col(i)[r]);
          }
          for (int i = 0; i < m; ++i) {
            slots[d + i] = batch.measure_col(i)[r];
          }
          if (!job.where.EvalBool(slots.data())) continue;
        }
        for (int i = 0; i < d; ++i) key[i] = pass.cols[i][r];
        job.states.Update(key.data(),
                          arg_col != nullptr ? arg_col[r] : 1.0);
      }
    }
  }
  tracer.AddCounter(scan_span.id(), "rows_scanned",
                    static_cast<double>(fact.num_rows()));
  tracer.AddCounter(scan_span.id(), "batches",
                    static_cast<double>(batches));
  tracer.AddCounter(scan_span.id(), "adapter_batches",
                    static_cast<double>(adapter_batches));
  tracer.SetAttr(scan_span.id(), "batch_rows", std::to_string(cap));

  // Peak memory: all hash tables coexist at end of scan.
  {
    uint64_t peak_entries = 0;
    uint64_t peak_bytes = 0;
    for (const BaseJob& job : jobs) {
      peak_entries += job.states.size();
      peak_bytes += job.states.ApproxBytes();
      tracer.SetGaugeMax(scan_span.id(),
                         "hash_entries_hw/" + job.table_name,
                         static_cast<double>(job.states.size()));
    }
    tracer.SetGaugeMax(scan_span.id(), "peak_hash_entries",
                       static_cast<double>(peak_entries));
    tracer.SetGaugeMax(scan_span.id(), "peak_hash_bytes",
                       static_cast<double>(peak_bytes));
  }
  scan_span.End();

  CSM_RETURN_NOT_OK(ctx.CheckCancelled("single-scan combine"));

  // ---- Finalize base tables and evaluate composites.
  ScopedSpan combine_span(&tracer, "combine", rs.root());
  std::map<std::string, MeasureTable> tables;  // all computed measures
  for (BaseJob& job : jobs) {
    tables.emplace(job.table_name,
                   job.states.Materialize(workflow.schema(), job.gran,
                                          job.table_name));
  }

  // ---- Composite measures in topological order.
  for (const MeasureDef& def : workflow.measures()) {
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        break;  // already computed
      case MeasureOp::kRollup: {
        auto in = tables.find(def.input);
        CSM_CHECK(in != tables.end());
        const MeasureTable* source = &in->second;
        MeasureTable filtered(workflow.schema(), source->granularity(),
                              source->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(
              filtered, FilterMeasure(*source, *def.where, nullptr,
                                      source->name()));
          source = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashRollup(*source, def.gran, agg, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
      case MeasureOp::kMatch: {
        auto in = tables.find(def.input);
        CSM_CHECK(in != tables.end());
        size_t enum_idx = enumerator_by_gran.at(def.gran.levels());
        const MeasureTable& regions =
            tables.at(jobs[enum_idx].table_name);
        const MeasureTable* target = &in->second;
        MeasureTable filtered(workflow.schema(), target->granularity(),
                              target->name());
        if (def.where != nullptr) {
          CSM_ASSIGN_OR_RETURN(
              filtered, FilterMeasure(*target, *def.where, nullptr,
                                      target->name()));
          target = &filtered;
        }
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(
            MeasureTable result,
            HashMatchJoin(regions, *target, def.match, agg, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
      case MeasureOp::kCombine: {
        std::vector<const MeasureTable*> inputs;
        for (const std::string& name : def.combine_inputs) {
          auto it = tables.find(name);
          CSM_CHECK(it != tables.end());
          inputs.push_back(&it->second);
        }
        CSM_ASSIGN_OR_RETURN(MeasureTable result,
                             HashCombine(inputs, *def.fc, def.name));
        tracer.SetGaugeMax(combine_span.id(),
                           "hash_entries_hw/" + def.name,
                           static_cast<double>(result.num_rows()));
        tables.emplace(def.name, std::move(result));
        break;
      }
    }
  }

  // ---- Keep only requested outputs.
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output && !ctx.options.include_hidden) continue;
    auto it = tables.find(def.name);
    CSM_CHECK(it != tables.end());
    out.tables.emplace(def.name, std::move(it->second));
    tables.erase(it);
  }
  combine_span.End();

  tracer.SetAttr(rs.root(), "sort_key", "(unsorted)");
  out.stats = rs.Finish();
  return out;
}

}  // namespace csm
