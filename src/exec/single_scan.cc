#include "exec/single_scan.h"

#include <memory>
#include <set>
#include <vector>

#include "exec/exec_context.h"
#include "exec/op/aggregate_op.h"
#include "exec/op/emit_op.h"
#include "exec/op/generalize_op.h"
#include "exec/op/scan_op.h"
#include "exec/op/vectorize.h"

namespace csm {

PhysicalPlan BuildSingleScanPlan(const Workflow& workflow,
                                 const EngineOptions& options) {
  // Count the hash tables the scan will maintain (basic measures plus one
  // region enumerator per distinct match granularity) for EXPLAIN output.
  size_t num_tables = 0;
  std::set<std::vector<int>> enum_grans;
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op == MeasureOp::kBaseAgg) {
      ++num_tables;
    } else if (def.op == MeasureOp::kMatch) {
      if (enum_grans.insert(def.gran.levels()).second) ++num_tables;
    }
  }

  PhysicalPlan plan;
  plan.engine = "single-scan";
  plan.dict_encoding = options.dict_encoding && options.vectorized;
  plan.morsel_rows = options.morsel_rows;
  plan.scan_batch_rows = options.scan_batch_rows;
  plan.threads = options.parallel_threads;
  plan.ops.push_back(std::make_unique<ScanOp>(ScanOp::Mode::kUnsorted));
  plan.ops.push_back(
      std::make_unique<GeneralizeOp>(BuildScanSweep(workflow)));
  plan.ops.push_back(std::make_unique<AggregateOp>(
      num_tables, ComputeVectorizeInfo(workflow, options)));
  plan.ops.push_back(std::make_unique<EmitOp>(EmitOp::Mode::kComposite));
  return plan;
}

Result<EvalOutput> SingleScanEngine::Run(const Workflow& workflow,
                                         const FactTable& fact,
                                         ExecContext& ctx) {
  PhysicalPlan plan = BuildSingleScanPlan(workflow, ctx.options);
  return plan.Execute(workflow, fact, ctx);
}

}  // namespace csm
