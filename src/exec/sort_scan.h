#ifndef CSM_EXEC_SORT_SCAN_H_
#define CSM_EXEC_SORT_SCAN_H_

#include <string>

#include "exec/engine.h"
#include "exec/op/physical_plan.h"

namespace csm {

struct ExecContext;

/// The one-pass sort/scan engine — the paper's core contribution (§5.2,
/// §5.3). The fact table is sorted once by an order vector; every measure
/// of the workflow is then evaluated in a single coordinated scan:
///
///  - each measure is a node of the computation graph holding its
///    in-flight hash entries *ordered by the entry's position in the sort
///    order* (the mapKey of Table 8);
///  - every data stream (scan -> basic measures, finalized entries ->
///    dependent measures) carries a monotone *frontier*: a lower bound on
///    the order position of any future update. Frontiers are transformed
///    across computational arcs exactly as the paper's order/slack algebra
///    prescribes (Table 6): roll-ups coarsen them, parent/child arcs
///    shorten them, sibling windows shift them back by the window reach;
///  - a node's watermark is the minimum of its input frontiers; entries
///    strictly below the watermark are finalized, emitted downstream in
///    order, and removed — bounding the memory footprint;
///  - at end of scan all streams close and everything flushes.
///
/// The sort order comes from ExecContext options (sort_key), or (when
/// empty) from a default that sorts by every dimension used by the query
/// at its finest queried level; the optimizer (src/opt) can search for
/// better orders using the static footprint model.
class SortScanEngine : public Engine {
 public:
  SortScanEngine() = default;

  std::string_view name() const override { return "sort-scan"; }

  using Engine::Run;
  Result<EvalOutput> Run(const Workflow& workflow, const FactTable& fact,
                         ExecContext& ctx) override;

  /// Out-of-core entry point: evaluates the workflow directly over a
  /// binary fact file (WriteFactTableBinary format). The file is sorted
  /// into runs under the memory budget and the merged record stream feeds
  /// the computation graph — the dataset is never fully resident, so
  /// datasets larger than RAM work end to end.
  Result<EvalOutput> RunFile(const Workflow& workflow,
                             const std::string& fact_path,
                             ExecContext& ctx);
  Result<EvalOutput> RunFile(const Workflow& workflow,
                             const std::string& fact_path);

  /// The default order vector used when the context's sort_key is empty:
  /// every dimension some measure needs, in schema order, at the finest
  /// level any measure granularity requests. Exposed for the optimizer
  /// and benches.
  static SortKey DefaultSortKey(const Workflow& workflow);
};

/// Lowers a workflow into the sort/scan operator pipeline:
/// scan(sort) -> generalize -> propagate -> emit(collect), with the
/// resolved sort order frozen into the plan. `file_input` picks the
/// out-of-core scan form.
PhysicalPlan BuildSortScanPlan(const Workflow& workflow,
                               const EngineOptions& options,
                               bool file_input);

}  // namespace csm

#endif  // CSM_EXEC_SORT_SCAN_H_
