#ifndef CSM_EXEC_ADAPTIVE_H_
#define CSM_EXEC_ADAPTIVE_H_

#include "exec/engine.h"

namespace csm {

/// Cost-based engine selection — the improvement the paper itself
/// suggests after Fig. 7(a) ("this situation can be addressed by
/// switching to simple scan when the required memory is smaller than the
/// memory budget"):
///
///  - if the *unsorted* footprint estimate (every region set fully
///    resident) fits comfortably in the budget, run the single-scan
///    algorithm and skip the sort entirely;
///  - otherwise pick the best sort order (greedy search over the
///    footprint model) and, if the streaming footprint fits, run the
///    one-pass sort/scan engine;
///  - otherwise fall back to the multi-pass engine.
///
/// The chosen engine's name is reported via ExecStats::sort_key prefix
/// ("[single-scan] ...", "[sort-scan] ...", "[multi-pass] ...").
class AdaptiveEngine : public Engine {
 public:
  AdaptiveEngine() = default;

  std::string_view name() const override { return "adaptive"; }

  using Engine::Run;
  Result<EvalOutput> Run(const Workflow& workflow, const FactTable& fact,
                         ExecContext& ctx) override;

  /// The decision without executing (for tests and EXPLAIN output).
  enum class Choice { kSingleScan, kSortScan, kMultiPass };
  static Result<Choice> Decide(const Workflow& workflow,
                               const EngineOptions& options);
};

std::string_view AdaptiveChoiceName(AdaptiveEngine::Choice choice);

}  // namespace csm

#endif  // CSM_EXEC_ADAPTIVE_H_
