#ifndef CSM_EXEC_MULTI_PASS_H_
#define CSM_EXEC_MULTI_PASS_H_

#include "exec/engine.h"
#include "exec/op/physical_plan.h"

namespace csm {

/// The multi-pass Sort/Scan engine (§5.4). When the one-pass engine's
/// estimated footprint exceeds the memory budget even under the best sort
/// order, the measures are partitioned into several Sort/Scan iterations
/// (each sorting the fact table by its own order vector) by the greedy
/// pass planner; measures whose inputs are materialized by earlier passes
/// are combined afterwards with traditional join strategies over the
/// stored measure tables, exactly as the paper prescribes.
///
/// The memory budget is interpreted as a target for *hash-entry* state;
/// sorting continues to spill through the external sorter independently.
class MultiPassEngine : public Engine {
 public:
  MultiPassEngine() = default;

  std::string_view name() const override { return "multi-pass"; }

  using Engine::Run;
  Result<EvalOutput> Run(const Workflow& workflow, const FactTable& fact,
                         ExecContext& ctx) override;
};

/// Lowers a workflow into the multi-pass pipeline: the greedy pass
/// planner runs here (at lowering time), producing one pass operator per
/// Sort/Scan iteration — each a nested sort/scan plan over that pass's
/// sub-workflow — followed by a post-combine operator that joins deferred
/// measures across the materialized pass outputs. Fails when the pass
/// planner rejects the workflow/budget combination.
Result<PhysicalPlan> BuildMultiPassPlan(const Workflow& workflow,
                                        const EngineOptions& options);

}  // namespace csm

#endif  // CSM_EXEC_MULTI_PASS_H_
