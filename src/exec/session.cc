#include "exec/session.h"

#include <functional>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "exec/scheduler.h"
#include "opt/sort_order.h"

namespace csm {

Result<std::unique_ptr<QuerySession>> QuerySession::Create(
    EngineKind kind, SessionOptions options) {
  CSM_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                       MakeEngine(kind, options.engine_options));
  return std::make_unique<QuerySession>(std::move(engine),
                                        std::move(options));
}

QuerySession::QuerySession(std::unique_ptr<Engine> engine,
                           SessionOptions options)
    : engine_(std::move(engine)), options_(std::move(options)) {}

Result<size_t> QuerySession::Submit(Workflow workflow) {
  if (workflow.measures().empty()) {
    return Status::InvalidArgument("QuerySession::Submit: empty workflow");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!pending_.empty() &&
      pending_.front().schema() != workflow.schema()) {
    return Status::InvalidArgument(
        "QuerySession::Submit: workflow is over a different schema object "
        "than the batch");
  }
  pending_.push_back(std::move(workflow));
  return pending_.size() - 1;
}

size_t QuerySession::num_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

SessionReport QuerySession::last_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

size_t QuerySession::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void QuerySession::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  cache_index_.clear();
}

EvalOutput QuerySession::CloneOutput(const EvalOutput& src) {
  EvalOutput out;
  out.stats = src.stats;
  for (const auto& [name, table] : src.tables) {
    out.tables.emplace(name, table.Clone());
  }
  return out;
}

const EvalOutput* QuerySession::CacheLookup(const CacheKey& key) {
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return nullptr;
  cache_.splice(cache_.begin(), cache_, it->second);  // mark used
  it->second = cache_.begin();
  return &cache_.front().output;
}

void QuerySession::CacheInsert(const CacheKey& key, const EvalOutput& output,
                               std::unique_ptr<DeltaEvaluator> delta) {
  if (options_.cache_capacity == 0) return;
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    cache_.splice(cache_.begin(), cache_, it->second);  // refresh
    it->second = cache_.begin();
    if (delta != nullptr && cache_.front().delta == nullptr) {
      // Upgrade an old no-state entry so it survives the next append.
      cache_.front().output = delta->Output(options_.include_hidden);
      cache_.front().output.stats = output.stats;
      cache_.front().delta = std::move(delta);
    }
    return;
  }
  CacheEntry entry{key, EvalOutput{}, std::move(delta)};
  if (entry.delta != nullptr) {
    // Serve the evaluator's own view of the tables so that values patched
    // by a later append and values cached now come from the same kernels.
    entry.output = entry.delta->Output(options_.include_hidden);
    entry.output.stats = output.stats;
  } else {
    entry.output = CloneOutput(output);
  }
  cache_.push_front(std::move(entry));
  cache_index_[key] = cache_.begin();
  while (cache_.size() > options_.cache_capacity) {
    cache_index_.erase(cache_.back().key);
    cache_.pop_back();
  }
}

Result<std::vector<EvalOutput>> QuerySession::RunPending(
    const FactTable& fact) {
  ExecContext ctx;
  ctx.options = options_.engine_options;
  return RunPending(fact, ctx);
}

Result<std::vector<EvalOutput>> QuerySession::RunPending(
    const FactTable& fact, ExecContext& ctx) {
  // Queries share the data lock: many can run at once, but none overlaps
  // an AppendAndRefresh, so each sees fact + cache pre- or post-append.
  std::shared_lock<std::shared_mutex> data_lock(data_mu_);

  // Drain the batch that exists right now; Submits racing with this run
  // land in the next batch.
  std::vector<Workflow> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(pending_);
  }
  std::vector<EvalOutput> results(batch.size());
  SessionReport report;
  report.queries = batch.size();
  if (batch.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    report_ = report;
    return results;
  }

  ScopedSpan session_span(ctx.tracer, "session", ctx.trace_parent);
  if (ctx.tracer != nullptr) {
    ctx.tracer->SetAttr(session_span.id(), "queries",
                        std::to_string(batch.size()));
  }

  // Result-cache pass: a query whose (fingerprint, fact content) pair is
  // cached skips the run entirely.
  const uint64_t fact_hash = fact.ContentHash();
  std::vector<CacheKey> keys(batch.size());
  std::vector<size_t> to_run;  // batch indices that missed
  for (size_t i = 0; i < batch.size(); ++i) {
    keys[i] = {QueryFingerprint(batch[i], options_.include_hidden),
               fact_hash};
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const EvalOutput* cached = CacheLookup(keys[i]);
      if (cached != nullptr) {
        results[i] = CloneOutput(*cached);
        hit = true;
      }
    }
    if (hit) {
      ++report.cache_hits;
    } else {
      ++report.cache_misses;
      to_run.push_back(i);
    }
    ScopedSpan query_span(ctx.tracer, "session.query", session_span.id());
    if (ctx.tracer != nullptr) {
      ctx.tracer->SetAttr(query_span.id(), "index", std::to_string(i));
      ctx.tracer->SetAttr(query_span.id(), "cache", hit ? "hit" : "miss");
    }
  }

  std::vector<std::unique_ptr<DeltaEvaluator>> deltas(batch.size());
  if (!to_run.empty()) {
    std::vector<const Workflow*> queries;
    queries.reserve(to_run.size());
    for (size_t i : to_run) queries.push_back(&batch[i]);
    CSM_ASSIGN_OR_RETURN(FusedPlan plan, FuseWorkflows(queries));
    report.total_measures = plan.total_measures;
    report.shared_measures = plan.shared_measures;
    report.fused_measures = plan.combined.measures().size();
    if (ctx.tracer != nullptr) {
      ctx.tracer->SetAttr(session_span.id(), "fused_measures",
                          std::to_string(report.fused_measures));
      ctx.tracer->SetAttr(session_span.id(), "shared_measures",
                          std::to_string(report.shared_measures));
    }

    // One engine run under one sort order planned for the COMBINED
    // workflow (§6 over the union of measures). An explicit caller key
    // wins; otherwise brute force, falling back to greedy when the
    // candidate space overflows the enumeration cap.
    ExecContext run_ctx = ctx;
    run_ctx.trace_parent = session_span.id();
    if (options_.include_hidden) run_ctx.options.include_hidden = true;
    if (run_ctx.options.sort_key.empty()) {
      Result<SortKey> planned = BruteForceSortKey(plan.combined);
      if (!planned.ok()) planned = GreedySortKey(plan.combined);
      CSM_ASSIGN_OR_RETURN(run_ctx.options.sort_key, std::move(planned));
    }
    CSM_ASSIGN_OR_RETURN(EvalOutput fused_out,
                         engine_->Run(plan.combined, fact, run_ctx));
    report.run_stats = fused_out.stats;

    // Demultiplex on the shared pool: each query's table clones are
    // independent of every other query's, so they make one claimable
    // task apiece (results[i] slots are disjoint).
    {
      std::vector<std::function<Status()>> tasks;
      tasks.reserve(to_run.size());
      for (size_t qi = 0; qi < to_run.size(); ++qi) {
        tasks.push_back([&, qi]() -> Status {
          const FusedQuery& mapping = plan.queries[qi];
          const auto& wanted =
              options_.include_hidden ? mapping.measures : mapping.outputs;
          EvalOutput& out = results[to_run[qi]];
          out.stats = fused_out.stats;
          for (const auto& [orig, fused] : wanted) {
            const MeasureTable* table = fused_out.FindTable(fused);
            if (table == nullptr) {
              return Status::Internal(
                  "QuerySession::RunPending: fused run did not emit '" +
                  fused + "' needed by query measure '" + orig + "'");
            }
            out.tables.emplace(orig, table->CloneAs(orig));
          }
          return Status::OK();
        });
      }
      CSM_RETURN_NOT_OK(ParallelTasks(
          ThreadPool::Global(),
          static_cast<int>(run_ctx.options.parallel_threads), ctx.cancel,
          tasks));
    }

    // Build incremental state for each miss outside mu_ (it costs one
    // fact scan per query), again one pool task per query. A build
    // failure just means that entry will invalidate instead of patch on
    // the next append.
    if (options_.delta_patching && options_.cache_capacity > 0) {
      std::vector<std::function<Status()>> tasks;
      tasks.reserve(to_run.size());
      for (size_t i : to_run) {
        tasks.push_back([&, i]() -> Status {
          Result<std::unique_ptr<DeltaEvaluator>> built = DeltaEvaluator::
              Create(batch[i], fact, options_.engine_options);
          if (built.ok()) deltas[i] = std::move(*built);
          return Status::OK();
        });
      }
      CSM_RETURN_NOT_OK(ParallelTasks(
          ThreadPool::Global(),
          static_cast<int>(run_ctx.options.parallel_threads), ctx.cancel,
          tasks));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!to_run.empty()) {
      for (size_t i : to_run) {
        CacheInsert(keys[i], results[i], std::move(deltas[i]));
      }
    }
    report_ = report;
  }
  return results;
}

Result<SessionAppendReport> QuerySession::AppendAndRefresh(
    FactTable& fact, const FactTable& delta) {
  ExecContext ctx;
  ctx.options = options_.engine_options;
  return AppendAndRefresh(fact, delta, ctx);
}

Result<SessionAppendReport> QuerySession::AppendAndRefresh(
    FactTable& fact, const FactTable& delta, ExecContext& ctx) {
  // Exclusive against RunPending's shared lock: queries either finish
  // before the append or start after it — never observe it half-applied.
  std::unique_lock<std::shared_mutex> data_lock(data_mu_);
  ScopedSpan span(ctx.tracer, "session.append", ctx.trace_parent);

  const uint64_t pre_hash = fact.ContentHash();
  const size_t first_row = fact.num_rows();
  CSM_RETURN_NOT_OK(fact.AppendBatch(delta));
  const uint64_t post_hash = fact.ContentHash();

  SessionAppendReport report;
  report.delta_rows = delta.num_rows();

  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->key.second != pre_hash) {
      // Entry for some other fact content; the append says nothing about
      // it, so leave it alone.
      ++it;
      continue;
    }
    if (it->delta == nullptr) {
      cache_index_.erase(it->key);
      it = cache_.erase(it);
      ++report.dropped_queries;
      continue;
    }
    Result<DeltaReport> patched =
        it->delta->ApplyAppend(fact, first_row, ctx.tracer, span.id());
    if (!patched.ok()) {
      // Never serve a maybe-stale entry: drop it and let the next
      // RunPending recompute (and rebuild its state).
      cache_index_.erase(it->key);
      it = cache_.erase(it);
      ++report.dropped_queries;
      continue;
    }
    ExecStats stats = it->output.stats;
    it->output = it->delta->Output(options_.include_hidden);
    it->output.stats = stats;
    cache_index_.erase(it->key);
    it->key.second = post_hash;
    cache_index_[it->key] = it;
    ++report.patched_queries;
    report.dirty_regions += patched->dirty_regions;
    report.patched_measures += patched->patched_measures;
    report.recomputed_measures += patched->recomputed_measures;
    ++it;
  }

  span.SetAttr("delta_rows", std::to_string(report.delta_rows));
  span.SetAttr("patched_queries", std::to_string(report.patched_queries));
  span.SetAttr("dropped_queries", std::to_string(report.dropped_queries));
  span.SetAttr("dirty_regions", std::to_string(report.dirty_regions));
  span.SetAttr("patched_measures",
               std::to_string(report.patched_measures));
  span.SetAttr("recomputed_measures",
               std::to_string(report.recomputed_measures));
  return report;
}

}  // namespace csm
