#include "algebra/measure_ops.h"

#include <cmath>
#include <limits>

#include "algebra/evaluator.h"
#include "common/flat_hash.h"
#include "common/hash.h"
#include "common/logging.h"

namespace csm {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Group states keyed by packed d-wide region keys; probes take the raw
// key pointer, so the per-row lookup allocates nothing.
using StateMap = FlatKeyMap<AggState>;

AggState& Touch(StateMap& states, const Value* key, AggKind kind) {
  bool inserted = false;
  AggState& state = states.FindOrInsert(key, &inserted);
  if (inserted) AggInit(kind, &state);
  return state;
}
}  // namespace

Result<MeasureTable> FilterMeasure(const MeasureTable& input,
                                   const ScalarExpr& cond,
                                   const Granularity* cond_gran,
                                   std::string name) {
  const Schema& schema = *input.schema();
  const int d = schema.num_dims();
  CSM_ASSIGN_OR_RETURN(
      BoundExpr bound,
      BoundExpr::Bind(cond, MeasureRowVars(schema, input.name())));
  MeasureTable out(input.schema(), input.granularity(), std::move(name));
  std::vector<double> slots(d + 2);
  RegionKey gen_key(d);
  for (size_t row = 0; row < input.num_rows(); ++row) {
    const Value* key = input.key_row(row);
    const Value* eval_key = key;
    if (cond_gran != nullptr) {
      GeneralizeKeyInto(schema, key, input.granularity(), *cond_gran,
                        &gen_key);
      eval_key = gen_key.data();
    }
    for (int i = 0; i < d; ++i) slots[i] = static_cast<double>(eval_key[i]);
    slots[d] = slots[d + 1] = input.value(row);
    if (bound.EvalBool(slots.data())) out.Append(key, input.value(row));
  }
  return out;
}

Result<MeasureTable> HashRollup(const MeasureTable& input,
                                const Granularity& gran, AggSpec agg,
                                std::string name) {
  const Schema& schema = *input.schema();
  const int d = schema.num_dims();
  if (!input.granularity().FinerOrEqual(gran)) {
    return Status::InvalidArgument(
        "roll-up input granularity must be finer than the target");
  }
  StateMap states(d);
  RegionKey key(d);
  for (size_t row = 0; row < input.num_rows(); ++row) {
    GeneralizeKeyInto(schema, input.key_row(row), input.granularity(),
                      gran, &key);
    AggState& state = Touch(states, key.data(), agg.kind);
    AggUpdate(agg.kind, &state, agg.arg >= 0 ? input.value(row) : 1.0);
  }
  MeasureTable out(input.schema(), gran, std::move(name));
  out.Reserve(states.size());
  states.ForEach([&](const Value* k, AggState& state) {
    out.Append(k, AggFinalize(agg.kind, state));
  });
  out.SortByKeyLex();
  return out;
}

Result<MeasureTable> HashMatchJoin(const MeasureTable& source,
                                   const MeasureTable& target,
                                   const MatchCond& cond, AggSpec agg,
                                   std::string name) {
  const Schema& schema = *source.schema();
  const int d = schema.num_dims();
  const AggKind kind = agg.kind;
  MeasureTable out(source.schema(), source.granularity(), std::move(name));
  out.Reserve(source.num_rows());

  if (cond.type == MatchType::kChildParent) {
    // Pre-aggregate the finer target up to the source granularity.
    StateMap states(d);
    RegionKey key(d);
    for (size_t row = 0; row < target.num_rows(); ++row) {
      GeneralizeKeyInto(schema, target.key_row(row), target.granularity(),
                        source.granularity(), &key);
      AggState& state = Touch(states, key.data(), kind);
      // count(*) counts matched partner regions even when their value is
      // NULL; count(M) and friends skip NULLs inside AggUpdate.
      AggUpdate(kind, &state, agg.arg >= 0 ? target.value(row) : 1.0);
    }
    for (size_t row = 0; row < source.num_rows(); ++row) {
      const Value* skey = source.key_row(row);
      const AggState* state = states.Find(skey);
      if (state == nullptr) {
        AggState empty;
        AggInit(kind, &empty);
        out.Append(skey, AggFinalize(kind, empty));
      } else {
        out.Append(skey, AggFinalize(kind, *state));
      }
    }
    out.SortByKeyLex();
    return out;
  }

  FlatKeyMap<std::vector<double>> by_key(d);
  {
    bool inserted = false;
    for (size_t row = 0; row < target.num_rows(); ++row) {
      by_key.FindOrInsert(target.key_row(row), &inserted)
          .push_back(target.value(row));
    }
  }

  RegionKey probe(d);
  for (size_t row = 0; row < source.num_rows(); ++row) {
    const Value* skey = source.key_row(row);
    AggState state;
    AggInit(kind, &state);
    auto fold = [&](const Value* k) {
      const std::vector<double>* values = by_key.Find(k);
      if (values == nullptr) return;
      for (double v : *values) {
        AggUpdate(kind, &state, agg.arg >= 0 ? v : 1.0);
      }
    };
    switch (cond.type) {
      case MatchType::kSelf:
        fold(skey);
        break;
      case MatchType::kParentChild:
        GeneralizeKeyInto(schema, skey, source.granularity(),
                          target.granularity(), &probe);
        fold(probe.data());
        break;
      case MatchType::kSibling:
        ForEachSiblingProbe(skey, d, cond, &probe,
                            [&](const RegionKey& k) { fold(k.data()); });
        break;
      case MatchType::kChildParent:
        CSM_CHECK(false) << "handled above";
        break;
    }
    out.Append(skey, AggFinalize(kind, state));
  }
  out.SortByKeyLex();
  return out;
}

Result<MeasureTable> HashCombine(
    const std::vector<const MeasureTable*>& inputs, const ScalarExpr& fc,
    std::string name) {
  if (inputs.empty() || inputs[0] == nullptr) {
    return Status::InvalidArgument("combine needs a source table");
  }
  const MeasureTable& source = *inputs[0];
  const Schema& schema = *source.schema();
  const int d = schema.num_dims();
  std::vector<std::string> names;
  for (const MeasureTable* t : inputs) {
    if (t == nullptr) return Status::InvalidArgument("null combine input");
    names.push_back(t->name());
  }
  CSM_ASSIGN_OR_RETURN(BoundExpr bound,
                       BoundExpr::Bind(fc, CombineVars(schema, names)));

  std::vector<FlatKeyMap<double>> lookups;
  lookups.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) lookups.emplace_back(d);
  {
    bool inserted = false;
    for (size_t i = 1; i < inputs.size(); ++i) {
      for (size_t row = 0; row < inputs[i]->num_rows(); ++row) {
        lookups[i].FindOrInsert(inputs[i]->key_row(row), &inserted) =
            inputs[i]->value(row);
      }
    }
  }

  MeasureTable out(source.schema(), source.granularity(), std::move(name));
  out.Reserve(source.num_rows());
  std::vector<double> slots(d + inputs.size());
  for (size_t row = 0; row < source.num_rows(); ++row) {
    const Value* key = source.key_row(row);
    for (int i = 0; i < d; ++i) slots[i] = static_cast<double>(key[i]);
    slots[d] = source.value(row);
    for (size_t i = 1; i < inputs.size(); ++i) {
      const double* v = lookups[i].Find(key);
      slots[d + i] = v == nullptr ? kNaN : *v;
    }
    out.Append(key, bound.Eval(slots.data()));
  }
  out.SortByKeyLex();
  return out;
}

}  // namespace csm
