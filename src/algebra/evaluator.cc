#include "algebra/evaluator.h"

#include <cmath>
#include <limits>

#include "algebra/measure_ops.h"
#include "common/flat_hash.h"
#include "common/hash.h"
#include "common/logging.h"

namespace csm {

namespace {

// Packed-key aggregation table: probes take the raw key pointer, so the
// reference evaluator's inner loop does not allocate.
using StateMap = FlatKeyMap<AggState>;

/// Evaluates `expr` to a measure table, recursively materializing inputs.
/// Per-operator semantics live in algebra/measure_ops.*; this class only
/// orchestrates recursion and the fact-table scan.
class Evaluator {
 public:
  Evaluator(const FactTable& fact, const MeasureEnv& env)
      : fact_(fact), env_(env) {}

  Result<MeasureTable> Eval(const AwExpr& expr) {
    switch (expr.kind()) {
      case AwKind::kFactTable:
        return Status::InvalidArgument(
            "cannot evaluate bare D as a measure table");
      case AwKind::kMeasureRef: {
        auto it = env_.find(expr.name());
        if (it == env_.end()) {
          return Status::NotFound("unresolved measure reference '" +
                                  expr.name() + "'");
        }
        return it->second->Clone();
      }
      case AwKind::kSelect: {
        if (expr.input()->IsRawOrSelectedRaw()) {
          return Status::InvalidArgument(
              "σ(D) is not itself a measure table; aggregate it");
        }
        CSM_ASSIGN_OR_RETURN(MeasureTable input, Eval(*expr.input()));
        return FilterMeasure(input, *expr.condition(), expr.cond_gran(),
                             expr.name());
      }
      case AwKind::kAggregate: {
        if (expr.input()->IsRawOrSelectedRaw()) {
          return AggregateFact(expr);
        }
        CSM_ASSIGN_OR_RETURN(MeasureTable input, Eval(*expr.input()));
        AggSpec agg = expr.agg();
        return HashRollup(input, expr.granularity(), agg, expr.name());
      }
      case AwKind::kMatchJoin: {
        CSM_ASSIGN_OR_RETURN(MeasureTable source, Eval(*expr.source()));
        CSM_ASSIGN_OR_RETURN(MeasureTable target, Eval(*expr.target()));
        return HashMatchJoin(source, target, expr.match(), expr.agg(),
                             expr.name());
      }
      case AwKind::kCombineJoin: {
        std::vector<MeasureTable> tables;
        tables.reserve(expr.inputs().size());
        for (const auto& in : expr.inputs()) {
          CSM_ASSIGN_OR_RETURN(MeasureTable t, Eval(*in));
          tables.push_back(std::move(t));
        }
        std::vector<const MeasureTable*> ptrs;
        for (const MeasureTable& t : tables) ptrs.push_back(&t);
        return HashCombine(ptrs, *expr.condition(), expr.name());
      }
    }
    return Status::Internal("bad AwExpr kind");
  }

 private:
  // g_{G,agg} applied to D or a σ-chain over D: one scan of the fact table
  // with the (possibly granularity-shifted) conditions applied per record.
  Result<MeasureTable> AggregateFact(const AwExpr& expr) {
    const Schema& schema = *expr.schema();
    const int d = schema.num_dims();
    const int m = schema.num_measures();
    const Granularity& gran = expr.granularity();
    StateMap states(d);
    RegionKey key(d);

    struct FactCond {
      BoundExpr expr;
      const Granularity* gran;
    };
    std::vector<FactCond> conds;
    const AwExpr* node = expr.input().get();
    const auto vars = FactRowVars(schema);
    while (node->kind() == AwKind::kSelect) {
      CSM_ASSIGN_OR_RETURN(BoundExpr cond,
                           BoundExpr::Bind(*node->condition(), vars));
      conds.push_back({std::move(cond), node->cond_gran()});
      node = node->input().get();
    }

    std::vector<double> slots(d + m);
    RegionKey cond_key(d);
    const Granularity base = Granularity::Base(schema);
    for (size_t row = 0; row < fact_.num_rows(); ++row) {
      const Value* dims = fact_.dim_row(row);
      const double* measures = fact_.measure_row(row);
      if (!conds.empty()) {
        for (int i = 0; i < m; ++i) slots[d + i] = measures[i];
        bool pass = true;
        for (const FactCond& cond : conds) {
          const Value* eval_key = dims;
          if (cond.gran != nullptr) {
            GeneralizeKeyInto(schema, dims, base, *cond.gran, &cond_key);
            eval_key = cond_key.data();
          }
          for (int i = 0; i < d; ++i) {
            slots[i] = static_cast<double>(eval_key[i]);
          }
          if (!cond.expr.EvalBool(slots.data())) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
      }
      GeneralizeKeyInto(schema, dims, base, gran, &key);
      bool inserted = false;
      AggState& state = states.FindOrInsert(key.data(), &inserted);
      if (inserted) AggInit(expr.agg().kind, &state);
      AggUpdate(expr.agg().kind, &state,
                expr.agg().arg >= 0 ? measures[expr.agg().arg] : 1.0);
    }

    MeasureTable out(expr.schema(), gran, expr.name());
    out.Reserve(states.size());
    states.ForEach([&](const Value* k, AggState& state) {
      out.Append(k, AggFinalize(expr.agg().kind, state));
    });
    out.SortByKeyLex();
    return out;
  }

  const FactTable& fact_;
  const MeasureEnv& env_;
};

}  // namespace

std::vector<std::string> FactRowVars(const Schema& schema) {
  std::vector<std::string> vars;
  for (int i = 0; i < schema.num_dims(); ++i) {
    vars.push_back(schema.dim(i).name);
  }
  for (int i = 0; i < schema.num_measures(); ++i) {
    vars.push_back(schema.measure_name(i));
  }
  return vars;
}

std::vector<std::string> MeasureRowVars(const Schema& schema,
                                        const std::string& table_name) {
  std::vector<std::string> vars;
  for (int i = 0; i < schema.num_dims(); ++i) {
    vars.push_back(schema.dim(i).name);
  }
  vars.push_back("M");
  vars.push_back(table_name.empty() ? "M" : table_name);
  return vars;
}

std::vector<std::string> CombineVars(
    const Schema& schema, const std::vector<std::string>& tables) {
  std::vector<std::string> vars;
  for (int i = 0; i < schema.num_dims(); ++i) {
    vars.push_back(schema.dim(i).name);
  }
  for (const std::string& t : tables) vars.push_back(t);
  return vars;
}

Result<MeasureTable> EvalAwExpr(const AwExpr& expr, const FactTable& fact,
                                const MeasureEnv& env) {
  return Evaluator(fact, env).Eval(expr);
}

}  // namespace csm
