#include "algebra/aw_expr.h"

#include <unordered_set>

#include "common/logging.h"

namespace csm {

std::string_view MatchTypeName(MatchType type) {
  switch (type) {
    case MatchType::kSelf:
      return "self";
    case MatchType::kParentChild:
      return "parentchild";
    case MatchType::kChildParent:
      return "childparent";
    case MatchType::kSibling:
      return "sibling";
  }
  return "?";
}

std::string MatchCond::ToString(const Schema& schema,
                                const Granularity& gran) const {
  std::string out(MatchTypeName(type));
  if (type == MatchType::kSibling) {
    out += "(";
    for (size_t i = 0; i < windows.size(); ++i) {
      if (i > 0) out += ", ";
      const SiblingWindow& w = windows[i];
      out += schema.dim(w.dim).name;
      out += " in [";
      out += std::to_string(w.lo);
      out += ", ";
      out += std::to_string(w.hi);
      out += "]";
    }
    out += ")";
  }
  (void)gran;
  return out;
}

bool AwExpr::IsRawOrSelectedRaw() const {
  const AwExpr* node = this;
  while (node->kind_ == AwKind::kSelect) node = node->inputs_[0].get();
  return node->kind_ == AwKind::kFactTable;
}

Result<AwExpr::Ptr> AwExpr::FactTable(SchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("fact table needs a schema");
  }
  auto e = std::shared_ptr<AwExpr>(new AwExpr());
  e->kind_ = AwKind::kFactTable;
  e->gran_ = Granularity::Base(*schema);
  e->schema_ = std::move(schema);
  return Ptr(e);
}

Result<AwExpr::Ptr> AwExpr::MeasureRef(SchemaPtr schema, std::string name,
                                       Granularity gran) {
  if (schema == nullptr) {
    return Status::InvalidArgument("measure ref needs a schema");
  }
  if (name.empty()) {
    return Status::InvalidArgument("measure ref needs a name");
  }
  if (gran.num_dims() != schema->num_dims()) {
    return Status::InvalidArgument("granularity arity mismatch");
  }
  auto e = std::shared_ptr<AwExpr>(new AwExpr());
  e->kind_ = AwKind::kMeasureRef;
  e->schema_ = std::move(schema);
  e->gran_ = std::move(gran);
  e->name_ = std::move(name);
  return Ptr(e);
}

Result<AwExpr::Ptr> AwExpr::Select(Ptr input, ScalarExprPtr condition) {
  if (input == nullptr || condition == nullptr) {
    return Status::InvalidArgument("selection needs an input and condition");
  }
  auto e = std::shared_ptr<AwExpr>(new AwExpr());
  e->kind_ = AwKind::kSelect;
  e->schema_ = input->schema();
  e->gran_ = input->granularity();
  e->name_ = input->name();
  e->inputs_ = {std::move(input)};
  e->condition_ = std::move(condition);
  return Ptr(e);
}

Result<AwExpr::Ptr> AwExpr::SelectAt(Ptr input, ScalarExprPtr condition,
                                     Granularity cond_gran) {
  if (input == nullptr) {
    return Status::InvalidArgument("selection needs an input");
  }
  if (!input->granularity().FinerOrEqual(cond_gran)) {
    return Status::InvalidArgument(
        "SelectAt condition granularity must be coarser than the input");
  }
  CSM_ASSIGN_OR_RETURN(Ptr base, Select(std::move(input),
                                        std::move(condition)));
  // base is uniquely owned here; fill in the evaluation granularity.
  auto* mutable_base = const_cast<AwExpr*>(base.get());
  mutable_base->has_cond_gran_ = true;
  mutable_base->cond_gran_ = std::move(cond_gran);
  return base;
}

Result<AwExpr::Ptr> AwExpr::Aggregate(Ptr input, Granularity gran,
                                      AggSpec agg, std::string name) {
  if (input == nullptr) {
    return Status::InvalidArgument("aggregation needs an input");
  }
  if (gran.num_dims() != input->schema()->num_dims()) {
    return Status::InvalidArgument("granularity arity mismatch");
  }
  if (!input->granularity().FinerOrEqual(gran)) {
    return Status::InvalidArgument(
        "aggregation requires input granularity ≤_G target granularity "
        "(got input " + input->granularity().ToString(*input->schema()) +
        " vs target " + gran.ToString(*input->schema()) + ")");
  }
  const bool from_raw = input->IsRawOrSelectedRaw();
  if (agg.arg >= 0) {
    const int limit = from_raw ? input->schema()->num_measures() : 1;
    if (agg.arg >= limit) {
      return Status::InvalidArgument("aggregate argument out of range");
    }
  }
  auto e = std::shared_ptr<AwExpr>(new AwExpr());
  e->kind_ = AwKind::kAggregate;
  e->schema_ = input->schema();
  e->gran_ = std::move(gran);
  e->agg_ = agg;
  e->name_ = std::move(name);
  e->inputs_ = {std::move(input)};
  return Ptr(e);
}

Result<AwExpr::Ptr> AwExpr::MatchJoin(Ptr source, Ptr target,
                                      MatchCond cond, AggSpec agg,
                                      std::string name) {
  if (source == nullptr || target == nullptr) {
    return Status::InvalidArgument("match join needs S and T");
  }
  if (source->IsRawOrSelectedRaw() || target->IsRawOrSelectedRaw()) {
    return Status::InvalidArgument(
        "match join operands may not be D or σ(D) (Table 5)");
  }
  const Schema& schema = *source->schema();
  const Granularity& sg = source->granularity();
  const Granularity& tg = target->granularity();
  switch (cond.type) {
    case MatchType::kSelf:
      if (sg != tg) {
        return Status::InvalidArgument(
            "self match requires equal granularities");
      }
      break;
    case MatchType::kParentChild:
      if (!sg.FinerOrEqual(tg)) {
        return Status::InvalidArgument(
            "parent/child match requires γ(S.X̄)=T.X̄: T must be coarser "
            "than S");
      }
      break;
    case MatchType::kChildParent:
      if (!tg.FinerOrEqual(sg)) {
        return Status::InvalidArgument(
            "child/parent match requires γ(T.X̄)=S.X̄: T must be finer "
            "than S");
      }
      break;
    case MatchType::kSibling: {
      if (sg != tg) {
        return Status::InvalidArgument(
            "sibling match requires equal granularities");
      }
      if (cond.windows.empty()) {
        return Status::InvalidArgument(
            "sibling match needs at least one window");
      }
      std::unordered_set<int> seen;
      for (const SiblingWindow& w : cond.windows) {
        if (w.dim < 0 || w.dim >= schema.num_dims()) {
          return Status::InvalidArgument("sibling window dim out of range");
        }
        if (sg.level(w.dim) == schema.dim(w.dim).hierarchy->all_level()) {
          return Status::InvalidArgument(
              "sibling window on a dimension rolled up to ALL");
        }
        if (w.lo > w.hi) {
          return Status::InvalidArgument("sibling window lo > hi");
        }
        if (!seen.insert(w.dim).second) {
          return Status::InvalidArgument(
              "duplicate sibling window dimension");
        }
      }
      break;
    }
  }
  if (agg.arg > 0) {
    return Status::InvalidArgument(
        "match join aggregates T's single measure (arg must be 0 or -1)");
  }
  auto e = std::shared_ptr<AwExpr>(new AwExpr());
  e->kind_ = AwKind::kMatchJoin;
  e->schema_ = source->schema();
  e->gran_ = source->granularity();
  e->agg_ = agg;
  e->match_ = std::move(cond);
  e->name_ = std::move(name);
  e->inputs_ = {std::move(source), std::move(target)};
  return Ptr(e);
}

Result<AwExpr::Ptr> AwExpr::CombineJoin(Ptr source,
                                        std::vector<Ptr> targets,
                                        ScalarExprPtr fc,
                                        std::string name) {
  if (source == nullptr || fc == nullptr) {
    return Status::InvalidArgument("combine join needs S and fc");
  }
  // `targets` may be empty: the degenerate S ⋈̄_{fc}() applies a scalar
  // function to S's own measure (a single-input combine in the workflow).
  if (source->IsRawOrSelectedRaw()) {
    return Status::InvalidArgument(
        "combine join source may not be D or σ(D) (Table 5)");
  }
  for (const Ptr& t : targets) {
    if (t == nullptr) {
      return Status::InvalidArgument("null combine join input");
    }
    if (t->IsRawOrSelectedRaw()) {
      return Status::InvalidArgument(
          "combine join inputs may not be D or σ(D) (Table 5)");
    }
    if (t->granularity() != source->granularity()) {
      return Status::InvalidArgument(
          "combine join requires equal granularities (Table 5)");
    }
  }
  auto e = std::shared_ptr<AwExpr>(new AwExpr());
  e->kind_ = AwKind::kCombineJoin;
  e->schema_ = source->schema();
  e->gran_ = source->granularity();
  e->condition_ = std::move(fc);
  e->name_ = std::move(name);
  e->inputs_.push_back(std::move(source));
  for (Ptr& t : targets) e->inputs_.push_back(std::move(t));
  return Ptr(e);
}

std::string AwExpr::ToString() const {
  const Schema& schema = *schema_;
  switch (kind_) {
    case AwKind::kFactTable:
      return "D";
    case AwKind::kMeasureRef:
      return name_;
    case AwKind::kSelect:
      return "σ[" + condition_->ToString() + "](" +
             inputs_[0]->ToString() + ")";
    case AwKind::kAggregate:
      return "g[" + gran_.ToString(schema) + ", " +
             std::string(AggKindName(agg_.kind)) +
             (agg_.arg >= 0 ? "(arg" + std::to_string(agg_.arg) + ")"
                            : "(*)") +
             "](" + inputs_[0]->ToString() + ")";
    case AwKind::kMatchJoin:
      return "(" + inputs_[0]->ToString() + " ⋈[" +
             match_.ToString(schema, gran_) + ", " +
             std::string(AggKindName(agg_.kind)) + "] " +
             inputs_[1]->ToString() + ")";
    case AwKind::kCombineJoin: {
      std::string out = "(" + inputs_[0]->ToString() + " ⋈̄[" +
                        condition_->ToString() + "](";
      for (size_t i = 1; i < inputs_.size(); ++i) {
        if (i > 1) out += ", ";
        out += inputs_[i]->ToString();
      }
      return out + "))";
    }
  }
  return "?";
}

}  // namespace csm
