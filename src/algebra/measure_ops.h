#ifndef CSM_ALGEBRA_MEASURE_OPS_H_
#define CSM_ALGEBRA_MEASURE_OPS_H_

#include <string>
#include <vector>

#include "algebra/aw_expr.h"
#include "common/result.h"
#include "storage/measure_table.h"

namespace csm {

/// Batch (fully materialized, hash-based) implementations of the AW-RA
/// operators over measure tables. These are the single shared semantics
/// used by the reference evaluator, the single-scan engine (§5.1) and the
/// multi-pass combiner; the streaming sort/scan engine and the relational
/// baseline implement the same operators independently and are tested for
/// agreement.

/// σ_cond(T). `cond_gran`, when non-null, evaluates the condition's
/// dimension variables rolled up to that granularity (Property 2 form).
Result<MeasureTable> FilterMeasure(const MeasureTable& input,
                                   const ScalarExpr& cond,
                                   const Granularity* cond_gran,
                                   std::string name);

/// g_{G,agg}(T) for a measure-table input. agg.arg: 0 folds T's measure,
/// -1 counts rows.
Result<MeasureTable> HashRollup(const MeasureTable& input,
                                const Granularity& gran, AggSpec agg,
                                std::string name);

/// S ⋈_{cond,agg} T: one output row per region of `source` (its measure
/// value is ignored — it is the region enumerator), aggregating the
/// matching rows of `target`.
Result<MeasureTable> HashMatchJoin(const MeasureTable& source,
                                   const MeasureTable& target,
                                   const MatchCond& cond, AggSpec agg,
                                   std::string name);

/// S ⋈̄_{fc}(T_1..T_n): `inputs[0]` is S; fc sees variables named after
/// each input table plus the dimension attributes.
Result<MeasureTable> HashCombine(
    const std::vector<const MeasureTable*>& inputs, const ScalarExpr& fc,
    std::string name);

/// Calls `fold(probe_key)` for every coordinate in the sibling-window box
/// around `skey` (d values at the shared granularity). Offsets that would
/// take a coordinate below zero are skipped.
template <typename Fold>
void ForEachSiblingProbe(const Value* skey, int d, const MatchCond& cond,
                         RegionKey* probe, Fold fold) {
  probe->assign(skey, skey + d);
  // Iterative odometer over the window box.
  const size_t n = cond.windows.size();
  std::vector<int64_t> offset(n);
  for (size_t i = 0; i < n; ++i) offset[i] = cond.windows[i].lo;
  for (;;) {
    bool valid = true;
    for (size_t i = 0; i < n; ++i) {
      const SiblingWindow& w = cond.windows[i];
      const int64_t v = static_cast<int64_t>(skey[w.dim]) + offset[i];
      if (v < 0) {
        valid = false;
        break;
      }
      (*probe)[w.dim] = static_cast<Value>(v);
    }
    if (valid) fold(static_cast<const RegionKey&>(*probe));
    // Advance the odometer.
    size_t i = 0;
    for (; i < n; ++i) {
      if (++offset[i] <= cond.windows[i].hi) break;
      offset[i] = cond.windows[i].lo;
    }
    if (i == n) break;
  }
}

}  // namespace csm

#endif  // CSM_ALGEBRA_MEASURE_OPS_H_
