#ifndef CSM_ALGEBRA_REWRITE_H_
#define CSM_ALGEBRA_REWRITE_H_

#include "algebra/aw_expr.h"

namespace csm {

/// Algebraic rewrites corresponding to Theorem 1 of the paper. Each Try*
/// function returns a rewritten (semantically equivalent) expression, or
/// the input pointer unchanged when the rewrite does not apply. The
/// equivalences are verified by property-based tests against the reference
/// evaluator.

/// Property 1 — g_{G1,agg1}(g_{G2,agg2}(T)) = g_{G1,agg'}(T) for
/// distributive compositions. The paper states this for one distributive
/// `agg`; the precise compositions implemented are:
///   sum∘sum = sum, min∘min = min, max∘max = max, sum∘count = count.
AwExpr::Ptr TryCollapseAggregate(const AwExpr::Ptr& expr);

/// Property 2 — σ_cond(g_{G,agg}(T)) = g_{G,agg}(σ_cond'(T)) when `cond`
/// depends only on dimension attributes. cond' evaluates the same
/// expression on coordinates rolled up to G (AwExpr::SelectAt).
AwExpr::Ptr TryPushSelection(const AwExpr::Ptr& expr);

/// True iff the condition references only dimension attributes of the
/// schema (no "M", no measure or table names) — the applicability test of
/// Property 2.
bool ConditionUsesOnlyDims(const ScalarExpr& cond, const Schema& schema);

/// Applies both rewrites bottom-up until fixpoint.
AwExpr::Ptr RewriteFixpoint(const AwExpr::Ptr& expr);

}  // namespace csm

#endif  // CSM_ALGEBRA_REWRITE_H_
