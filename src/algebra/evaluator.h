#ifndef CSM_ALGEBRA_EVALUATOR_H_
#define CSM_ALGEBRA_EVALUATOR_H_

#include <map>
#include <string>

#include "algebra/aw_expr.h"
#include "common/result.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"

namespace csm {

/// Named measure tables available to kMeasureRef nodes.
using MeasureEnv = std::map<std::string, const MeasureTable*>;

/// Reference evaluator for AW-RA expressions: direct, hash-based, fully
/// materialized — the executable form of the SQL equivalences in Tables
/// 2-4. It makes no attempt to bound memory or share work; the streaming
/// engines are validated against it, and the relational baseline reuses its
/// per-operator semantics.
///
/// `expr` must be a measure-producing node (not bare D / σ(D)).
Result<MeasureTable> EvalAwExpr(const AwExpr& expr, const FactTable& fact,
                                const MeasureEnv& env = {});

/// Variable layout helpers shared by all engines, so predicates and
/// combine functions bind identically everywhere.
///
/// Layout for a fact-table row: [dim names..., raw measure names...].
std::vector<std::string> FactRowVars(const Schema& schema);

/// Layout for a measure-table row: [dim names..., "M", table name] — the
/// final two slots both hold the measure value, so conditions may say
/// either "M > 5" or "Count > 5".
std::vector<std::string> MeasureRowVars(const Schema& schema,
                                        const std::string& table_name);

/// Layout for a combine join: [dim names..., S name, T_1 name, ...].
std::vector<std::string> CombineVars(const Schema& schema,
                                     const std::vector<std::string>& tables);

}  // namespace csm

#endif  // CSM_ALGEBRA_EVALUATOR_H_
