#ifndef CSM_ALGEBRA_AW_EXPR_H_
#define CSM_ALGEBRA_AW_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "expr/scalar_expr.h"
#include "model/granularity.h"
#include "model/schema.h"

namespace csm {

/// The AW-RA operators (paper §3.2, Table 5).
enum class AwKind {
  kFactTable,    // D — the raw dataset
  kMeasureRef,   // named reference to another measure table (a workflow
                 // oval); resolved through an environment at eval time
  kSelect,       // σ_cond(T)
  kAggregate,    // g_{G,agg}(T) — roll-up
  kMatchJoin,    // S ⋈_{cond,agg} T
  kCombineJoin,  // S ⋈̄_{fc}(T_1..T_n)
};

/// The four common match-join condition families (paper §3.2). Semantics
/// are relative to (S = output region set, T = input measure table):
///  - kSelf:        S.X̄ = T.X̄ (same granularity)
///  - kParentChild: γ(S.X̄) = T.X̄ — T is coarser; every S region joins its
///                  unique ancestor in T
///  - kChildParent: γ(T.X̄) = S.X̄ — T is finer; every S region aggregates
///                  its descendants in T (equivalent to roll-up)
///  - kSibling:     T.X̄ ∈ NEIGHBOR(S.X̄) — same granularity, T within a
///                  moving window around S on selected dimensions
enum class MatchType { kSelf, kParentChild, kChildParent, kSibling };

std::string_view MatchTypeName(MatchType type);

/// One moving-window constraint of a sibling match: T.X_dim − S.X_dim must
/// lie in [lo, hi], in units of the shared granularity's domain (e.g. hours
/// for t:hour). The paper's 6-hour trailing window [c.t, c.t+5] is
/// {dim=t, lo=0, hi=5}.
struct SiblingWindow {
  int dim = 0;
  int64_t lo = 0;
  int64_t hi = 0;

  bool operator==(const SiblingWindow& other) const {
    return dim == other.dim && lo == other.lo && hi == other.hi;
  }
};

/// A match-join condition. For kSibling, dimensions without a window must
/// match exactly.
struct MatchCond {
  MatchType type = MatchType::kSelf;
  std::vector<SiblingWindow> windows;

  static MatchCond Self() { return {MatchType::kSelf, {}}; }
  static MatchCond ParentChild() { return {MatchType::kParentChild, {}}; }
  static MatchCond ChildParent() { return {MatchType::kChildParent, {}}; }
  static MatchCond Sibling(std::vector<SiblingWindow> windows) {
    return {MatchType::kSibling, std::move(windows)};
  }

  std::string ToString(const Schema& schema,
                       const Granularity& gran) const;
};

/// An immutable AW-RA expression node. Built through the factory functions,
/// which enforce the operator prerequisites of Table 5; an expression that
/// constructs successfully is well-typed (its output is a measure table
/// with a known granularity).
class AwExpr {
 public:
  using Ptr = std::shared_ptr<const AwExpr>;

  /// D: the fact table at base granularity. The "measure" of D's rows is
  /// selected per-aggregation via AggSpec::arg.
  static Result<Ptr> FactTable(SchemaPtr schema);

  /// Named reference to a measure table computed elsewhere (workflow
  /// oval). `gran` is the referenced table's granularity.
  static Result<Ptr> MeasureRef(SchemaPtr schema, std::string name,
                                Granularity gran);

  /// σ_cond(T). The condition may reference dimension names (values at
  /// T's granularity) and, for measure tables, "M"; for the fact table the
  /// raw measure attribute names.
  static Result<Ptr> Select(Ptr input, ScalarExprPtr condition);

  /// σ with the dimension variables of `condition` evaluated at
  /// `cond_gran` instead of the input's granularity (each dim value is
  /// rolled up before binding). This is the cond₂ form produced by the
  /// Property 2 rewrite σ_c(g_G(T)) = g_G(σ_c'(T)); cond_gran records the
  /// granularity the condition was originally written against.
  static Result<Ptr> SelectAt(Ptr input, ScalarExprPtr condition,
                              Granularity cond_gran);

  /// g_{G,agg}(T). Requires T.G ≤_G G.
  static Result<Ptr> Aggregate(Ptr input, Granularity gran, AggSpec agg,
                               std::string name);

  /// S ⋈_{cond,agg} T. Neither side may be D or σ(D) (Table 5); the
  /// granularities must fit the condition family.
  static Result<Ptr> MatchJoin(Ptr source, Ptr target, MatchCond cond,
                               AggSpec agg, std::string name);

  /// S ⋈̄_{fc}(T_1..T_n). All inputs share S's granularity; none may be D
  /// or σ(D). `fc` references inputs by name.
  static Result<Ptr> CombineJoin(Ptr source, std::vector<Ptr> targets,
                                 ScalarExprPtr fc, std::string name);

  AwKind kind() const { return kind_; }
  const SchemaPtr& schema() const { return schema_; }
  const Granularity& granularity() const { return gran_; }
  /// Measure/table name ("" for D and σ nodes, which inherit context).
  const std::string& name() const { return name_; }

  const std::vector<Ptr>& inputs() const { return inputs_; }
  /// kSelect / kAggregate: the single input.
  const Ptr& input() const { return inputs_[0]; }
  /// kMatchJoin / kCombineJoin: S.
  const Ptr& source() const { return inputs_[0]; }
  /// kMatchJoin: T.
  const Ptr& target() const { return inputs_[1]; }

  const ScalarExprPtr& condition() const { return condition_; }
  const AggSpec& agg() const { return agg_; }
  const MatchCond& match() const { return match_; }

  /// kSelect only: granularity at which the condition's dimension
  /// variables are evaluated; nullptr means the input's own granularity.
  const Granularity* cond_gran() const {
    return has_cond_gran_ ? &cond_gran_ : nullptr;
  }

  /// True for D and σ(...(D)) — the forms Table 5 bans as join operands.
  bool IsRawOrSelectedRaw() const;

  /// Algebra text, e.g. "g[(t:hour), count](σ[M > 5](Count))".
  std::string ToString() const;

 private:
  AwExpr() = default;

  AwKind kind_ = AwKind::kFactTable;
  SchemaPtr schema_;
  Granularity gran_;
  std::string name_;
  std::vector<Ptr> inputs_;
  ScalarExprPtr condition_;  // kSelect cond; kCombineJoin fc
  AggSpec agg_;
  MatchCond match_;
  bool has_cond_gran_ = false;
  Granularity cond_gran_;
};

}  // namespace csm

#endif  // CSM_ALGEBRA_AW_EXPR_H_
