#include "algebra/rewrite.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

namespace {

/// Composition table for Property 1: outer(inner) -> collapsed kind, or
/// kNone-like "no rewrite" signalled via `ok`.
struct Collapse {
  bool ok = false;
  AggKind kind = AggKind::kCount;
};

Collapse CollapseKinds(AggKind outer, AggKind inner) {
  if (outer == AggKind::kSum && inner == AggKind::kSum) {
    return {true, AggKind::kSum};
  }
  if (outer == AggKind::kMin && inner == AggKind::kMin) {
    return {true, AggKind::kMin};
  }
  if (outer == AggKind::kMax && inner == AggKind::kMax) {
    return {true, AggKind::kMax};
  }
  if (outer == AggKind::kSum && inner == AggKind::kCount) {
    return {true, AggKind::kCount};
  }
  return {};
}

}  // namespace

bool ConditionUsesOnlyDims(const ScalarExpr& cond, const Schema& schema) {
  std::vector<std::string> vars;
  cond.CollectVars(&vars);
  for (const std::string& var : vars) {
    std::string lower = ToLower(var);
    if (EndsWith(lower, ".m")) return false;
    bool is_dim = false;
    for (int i = 0; i < schema.num_dims(); ++i) {
      if (ToLower(schema.dim(i).name) == lower) {
        is_dim = true;
        break;
      }
    }
    if (!is_dim) return false;
  }
  return true;
}

AwExpr::Ptr TryCollapseAggregate(const AwExpr::Ptr& expr) {
  if (expr->kind() != AwKind::kAggregate) return expr;
  const AwExpr::Ptr& inner = expr->input();
  if (inner->kind() != AwKind::kAggregate) return expr;
  // Both aggregations must consume the natural measure: the outer must
  // fold the inner's single output measure (arg 0 or -1-as-count is NOT
  // foldable for count∘count; the table handles which kinds compose).
  if (expr->agg().arg != 0) return expr;
  Collapse collapse = CollapseKinds(expr->agg().kind, inner->agg().kind);
  if (!collapse.ok) return expr;
  auto rewritten = AwExpr::Aggregate(
      inner->input(), expr->granularity(),
      AggSpec{collapse.kind, inner->agg().arg}, expr->name());
  if (!rewritten.ok()) return expr;
  return std::move(rewritten).ValueOrDie();
}

AwExpr::Ptr TryPushSelection(const AwExpr::Ptr& expr) {
  if (expr->kind() != AwKind::kSelect) return expr;
  if (expr->cond_gran() != nullptr) return expr;  // already pushed
  const AwExpr::Ptr& agg = expr->input();
  if (agg->kind() != AwKind::kAggregate) return expr;
  if (!ConditionUsesOnlyDims(*expr->condition(), *expr->schema())) {
    return expr;
  }
  // σ_cond(g_G(T))  →  g_G(σ_cond@G(T)).
  auto pushed = AwExpr::SelectAt(agg->input(), expr->condition(),
                                 agg->granularity());
  if (!pushed.ok()) return expr;
  auto rebuilt = AwExpr::Aggregate(std::move(pushed).ValueOrDie(),
                                   agg->granularity(), agg->agg(),
                                   agg->name());
  if (!rebuilt.ok()) return expr;
  return std::move(rebuilt).ValueOrDie();
}

namespace {

AwExpr::Ptr RewriteNode(const AwExpr::Ptr& expr);

AwExpr::Ptr RewriteChildren(const AwExpr::Ptr& expr) {
  if (expr->inputs().empty()) return expr;
  std::vector<AwExpr::Ptr> new_inputs;
  bool changed = false;
  for (const AwExpr::Ptr& in : expr->inputs()) {
    AwExpr::Ptr rewritten = RewriteNode(in);
    changed = changed || rewritten.get() != in.get();
    new_inputs.push_back(std::move(rewritten));
  }
  if (!changed) return expr;
  // Rebuild this node over the rewritten children.
  switch (expr->kind()) {
    case AwKind::kSelect: {
      auto r = expr->cond_gran() == nullptr
                   ? AwExpr::Select(new_inputs[0], expr->condition())
                   : AwExpr::SelectAt(new_inputs[0], expr->condition(),
                                      *expr->cond_gran());
      return r.ok() ? std::move(r).ValueOrDie() : expr;
    }
    case AwKind::kAggregate: {
      auto r = AwExpr::Aggregate(new_inputs[0], expr->granularity(),
                                 expr->agg(), expr->name());
      return r.ok() ? std::move(r).ValueOrDie() : expr;
    }
    case AwKind::kMatchJoin: {
      auto r = AwExpr::MatchJoin(new_inputs[0], new_inputs[1],
                                 expr->match(), expr->agg(), expr->name());
      return r.ok() ? std::move(r).ValueOrDie() : expr;
    }
    case AwKind::kCombineJoin: {
      std::vector<AwExpr::Ptr> targets(new_inputs.begin() + 1,
                                       new_inputs.end());
      auto r = AwExpr::CombineJoin(new_inputs[0], std::move(targets),
                                   expr->condition(), expr->name());
      return r.ok() ? std::move(r).ValueOrDie() : expr;
    }
    default:
      return expr;
  }
}

AwExpr::Ptr RewriteNode(const AwExpr::Ptr& expr) {
  AwExpr::Ptr current = RewriteChildren(expr);
  for (int i = 0; i < 8; ++i) {  // bounded fixpoint per node
    AwExpr::Ptr next = TryPushSelection(TryCollapseAggregate(current));
    if (next.get() == current.get()) break;
    current = RewriteChildren(next);
  }
  return current;
}

}  // namespace

AwExpr::Ptr RewriteFixpoint(const AwExpr::Ptr& expr) {
  return RewriteNode(expr);
}

}  // namespace csm
