#ifndef CSM_DATA_SYNTHETIC_H_
#define CSM_DATA_SYNTHETIC_H_

#include "model/schema.h"
#include "storage/fact_table.h"

namespace csm {

/// The synthetic evaluation dataset of §7.1: `num_dims` dimension
/// attributes sharing a uniform hierarchy (each domain value covers
/// `fanout` values of the next finer domain), all attribute values drawn
/// independently and uniformly from the base domain. One raw measure
/// column carries small uniform integers.
struct SyntheticDataOptions {
  size_t rows = 1 << 20;
  uint64_t base_cardinality = 1000;  // values per base domain
  uint64_t seed = 42;
};

/// Generates rows for a schema built by MakeSyntheticSchema (or any schema
/// whose base domains accept values in [0, base_cardinality)).
FactTable GenerateSyntheticFacts(SchemaPtr schema,
                                 const SyntheticDataOptions& options);

}  // namespace csm

#endif  // CSM_DATA_SYNTHETIC_H_
