#ifndef CSM_DATA_NETLOG_H_
#define CSM_DATA_NETLOG_H_

#include "common/result.h"
#include "model/schema.h"
#include "storage/fact_table.h"

namespace csm {

/// Synthetic network attack log standing in for the paper's Dshield and
/// LBL HoneyNet datasets (which are not redistributable). The generator
/// reproduces the statistical shape the paper's queries exercise:
///
///  - timestamps over a multi-day window with diurnal volume modulation;
///  - heavy-tailed (Zipf) source popularity across a large source pool,
///    sources scattered over the IPv4 space;
///  - targets concentrated in one monitored /16 (a honeynet);
///  - a skewed port mix over common service ports;
///  - injected *escalation events*: attack volume into one target /24
///    doubling hour over hour (the worm-outbreak signature the network
///    escalation query detects);
///  - injected *multi-recon events*: bursts where many distinct sources
///    probe one target /24 on one port within an hour (the multi-recon
///    query's signature).
///
/// Rows use the MakeNetworkLogSchema layout: t (seconds), U (source IP),
/// V (target IP), P (port), bytes.
struct NetLogOptions {
  size_t rows = 1 << 20;
  uint64_t seed = 42;
  uint64_t duration_seconds = 3 * 24 * 3600;
  uint32_t num_sources = 50000;
  double source_zipf_theta = 0.9;
  uint32_t monitored_net16 = 0x0a01;  // 10.1.0.0/16
  int escalation_events = 3;
  int escalation_hours = 5;   // length of each doubling ramp
  int recon_events = 3;
  int recon_sources = 64;     // distinct sources per recon burst
};

FactTable GenerateNetLog(SchemaPtr schema, const NetLogOptions& options);

}  // namespace csm

#endif  // CSM_DATA_NETLOG_H_
