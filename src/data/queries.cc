#include "data/queries.h"

#include <string>

#include "common/status.h"

namespace csm {

Result<Workflow> MakeQ1ChildParent(SchemaPtr schema, int num_children) {
  if (num_children < 1 || num_children > 7) {
    return Status::InvalidArgument("num_children must be in [1, 7]");
  }
  // Child region sets: progressively different secondary dimensions and
  // levels, all finer than the parent region set (d0:L1).
  static const char* const kChildGrans[7] = {
      "(d0:L0)",
      "(d0:L0, d1:L1)",
      "(d0:L0, d2:L1)",
      "(d0:L0, d3:L1)",
      "(d0:L0, d1:L0)",
      "(d0:L0, d2:L0)",
      "(d0:L1, d3:L0)",
  };
  static const char* const kAggs[7] = {"sum(M)", "count(M)", "max(M)",
                                       "sum(M)", "count(M)", "max(M)",
                                       "sum(M)"};
  std::string dsl;
  std::string combine_list;
  std::string combine_expr;
  for (int i = 0; i < num_children; ++i) {
    const std::string child = "Child" + std::to_string(i);
    const std::string rolled = "Roll" + std::to_string(i);
    dsl += "measure " + child + " at " + kChildGrans[i] +
           " = agg count(*) from FACT hidden;\n";
    dsl += "measure " + rolled + " at (d0:L1) = match " + child +
           " using childparent agg " + std::string(kAggs[i]) +
           " hidden;\n";
    if (i > 0) {
      combine_list += ", ";
      combine_expr += " + ";
    }
    combine_list += rolled;
    combine_expr += "coalesce(" + rolled + ", 0)";
  }
  dsl += "measure Composite at (d0:L1) = combine(" + combine_list +
         ") as " + combine_expr + ";\n";
  return Workflow::Parse(std::move(schema), dsl);
}

Result<Workflow> MakeQ2SiblingChain(SchemaPtr schema, int chain_length,
                                    int window) {
  if (chain_length < 1) {
    return Status::InvalidArgument("chain_length must be >= 1");
  }
  std::string dsl =
      "measure C0 at (d0:L0) = agg count(*) from FACT hidden;\n";
  for (int i = 1; i <= chain_length; ++i) {
    const bool last = i == chain_length;
    dsl += "measure C" + std::to_string(i) + " at (d0:L0) = match C" +
           std::to_string(i - 1) + " using sibling(d0 in [0, " +
           std::to_string(window) + "]) agg avg(M)" +
           (last ? ";\n" : " hidden;\n");
  }
  return Workflow::Parse(std::move(schema), dsl);
}

Result<Workflow> MakeEscalationQuery(SchemaPtr schema, double factor) {
  std::string dsl = R"(
    # Hourly attack volume into each target /24 subnetwork.
    measure Vol at (t:hour, V:net24) = agg count(*) from FACT hidden;
    # The previous hour's volume for the same network.
    measure PrevVol at (t:hour, V:net24) =
        match Vol using sibling(t in [-1, -1]) agg sum(M) hidden;
    # Growth ratio; NULL-safe for the first hour of a network.
    measure Growth at (t:hour, V:net24) = combine(Vol, PrevVol)
        as if(isnull(PrevVol) || PrevVol < 1, 0, Vol / PrevVol);
    # Escalation alerts per network: hours whose volume grew > factor
    # over a non-trivial base.
    measure Alerts at (V:net24) = agg count(M) from Growth
        where M > )" + std::to_string(factor) + ";\n";
  return Workflow::Parse(std::move(schema), dsl);
}

Result<Workflow> MakeMultiReconQuery(SchemaPtr schema,
                                     double min_sources) {
  std::string dsl = R"(
    # Packets per (hour, target /24, source).
    measure SrcCount at (t:hour, V:net24, U:ip) =
        agg count(*) from FACT hidden;
    # Three child/parent aggregations over the same child region set.
    measure UniqueSrcs at (t:hour, V:net24) =
        match SrcCount using childparent agg count(M) hidden;
    measure ReconVol at (t:hour, V:net24) =
        match SrcCount using childparent agg sum(M) hidden;
    measure MaxPerSrc at (t:hour, V:net24) =
        match SrcCount using childparent agg max(M) hidden;
    # Recon indicator: many distinct sources, none dominating.
    measure Recon at (t:hour, V:net24) =
        combine(UniqueSrcs, ReconVol, MaxPerSrc)
        as if(UniqueSrcs >= )" + std::to_string(min_sources) + R"( &&
              MaxPerSrc * 4 < ReconVol, 1, 0);
  )";
  return Workflow::Parse(std::move(schema), dsl);
}

Result<Workflow> MakeCombinedNetworkQuery(SchemaPtr schema) {
  CSM_ASSIGN_OR_RETURN(Workflow escalation,
                       MakeEscalationQuery(schema));
  CSM_ASSIGN_OR_RETURN(Workflow recon, MakeMultiReconQuery(schema));
  Workflow combined(schema);
  for (const MeasureDef& def : escalation.measures()) {
    CSM_RETURN_NOT_OK(combined.AddMeasure(def));
  }
  for (const MeasureDef& def : recon.measures()) {
    CSM_RETURN_NOT_OK(combined.AddMeasure(def));
  }
  return combined;
}

Result<Workflow> MakeRunningExampleQuery(SchemaPtr schema) {
  return Workflow::Parse(std::move(schema), R"(
    # Example 1: hourly outgoing packets per source IP.
    measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
    # Example 2: number of busy sources per hour.
    measure SCount at (t:hour) = agg count(M) from Count where M > 5;
    # Example 3: traffic from busy sources per hour.
    measure STraffic at (t:hour) = agg sum(M) from Count where M > 5;
    # Example 4: six-hour moving average of the busy-source count.
    measure AvgCount at (t:hour) =
        match SCount using sibling(t in [0, 5]) agg avg(M);
    # Example 5: the ratio of Example 5.
    measure Ratio at (t:hour) = combine(AvgCount, STraffic, SCount)
        as AvgCount / (STraffic / SCount);
  )");
}

}  // namespace csm
