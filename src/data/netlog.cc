#include "data/netlog.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace csm {

namespace {

constexpr uint32_t kCommonPorts[] = {80,  443, 22,  23,  25,   53,
                                     135, 139, 445, 1433, 3306, 3389};

/// Scatters a dense source index over the IPv4 space deterministically,
/// so source identities are stable while /24 and /16 prefixes vary.
uint32_t SourceIp(uint32_t index) {
  return static_cast<uint32_t>(Mix64(index) >> 32) | 0x01000000u;
}

}  // namespace

FactTable GenerateNetLog(SchemaPtr schema, const NetLogOptions& options) {
  CSM_CHECK(schema->num_dims() == 4 && schema->num_measures() >= 1)
      << "GenerateNetLog expects the network-log schema";
  Rng rng(options.seed);
  FactTable fact(schema);

  const uint64_t hours =
      std::max<uint64_t>(1, options.duration_seconds / 3600);
  const uint32_t net16_base = options.monitored_net16 << 16;

  // ---- Plan injected events first so their rows interleave naturally.
  struct Escalation {
    uint64_t start_hour;
    uint32_t net24;  // within the monitored /16
    size_t base_rows;
  };
  struct Recon {
    uint64_t hour;
    uint32_t net24;
    uint32_t port;
    uint32_t first_source;  // recon_sources consecutive pool indices
  };
  std::vector<Escalation> escalations;
  for (int i = 0; i < options.escalation_events; ++i) {
    escalations.push_back(
        {rng.Uniform(std::max<uint64_t>(
             1, hours - options.escalation_hours)),
         static_cast<uint32_t>(rng.Uniform(256)),
         std::max<size_t>(8, options.rows / 4096)});
  }
  std::vector<Recon> recons;
  for (int i = 0; i < options.recon_events; ++i) {
    recons.push_back({rng.Uniform(hours),
                      static_cast<uint32_t>(rng.Uniform(256)),
                      kCommonPorts[rng.Uniform(std::size(kCommonPorts))],
                      static_cast<uint32_t>(
                          rng.Uniform(options.num_sources))});
  }

  size_t event_rows = 0;
  for (const Escalation& e : escalations) {
    for (int h = 0; h < options.escalation_hours; ++h) {
      event_rows += e.base_rows << h;
    }
  }
  for (const Recon& r : recons) {
    (void)r;
    event_rows += static_cast<size_t>(options.recon_sources) * 4;
  }
  const size_t background_rows =
      options.rows > event_rows ? options.rows - event_rows : 0;
  fact.Reserve(background_rows + event_rows);

  Value dims[4];
  double measures[1];
  auto emit = [&](uint64_t t, uint32_t src, uint32_t dst, uint32_t port,
                  double bytes) {
    dims[0] = t;
    dims[1] = src;
    dims[2] = dst;
    dims[3] = port;
    measures[0] = bytes;
    fact.AppendRow(dims, measures);
  };

  // ---- Background radiation.
  for (size_t row = 0; row < background_rows; ++row) {
    // Diurnal modulation: rejection-sample the hour with a sine weight.
    uint64_t t;
    for (;;) {
      t = rng.Uniform(options.duration_seconds);
      const double phase =
          static_cast<double>(t % 86400) / 86400.0 * 2.0 * M_PI;
      const double weight = 0.65 + 0.35 * std::sin(phase);
      if (rng.NextDouble() < weight) break;
    }
    const uint32_t src = SourceIp(static_cast<uint32_t>(
        rng.Zipf(options.num_sources, options.source_zipf_theta)));
    const uint32_t dst = net16_base | static_cast<uint32_t>(
                                          rng.Uniform(1 << 16));
    const uint32_t port =
        rng.Bernoulli(0.8)
            ? kCommonPorts[rng.Zipf(std::size(kCommonPorts), 0.8)]
            : static_cast<uint32_t>(rng.Uniform(65536));
    const double bytes = 40.0 + std::floor(std::exp(rng.NextDouble() * 7));
    emit(t, src, dst, port, bytes);
  }

  // ---- Escalation ramps: volume doubling hour over hour into one /24.
  for (const Escalation& e : escalations) {
    for (int h = 0; h < options.escalation_hours; ++h) {
      const size_t count = e.base_rows << h;
      for (size_t i = 0; i < count; ++i) {
        const uint64_t t =
            (e.start_hour + h) * 3600 + rng.Uniform(3600);
        const uint32_t src = SourceIp(static_cast<uint32_t>(
            rng.Uniform(options.num_sources)));
        const uint32_t dst =
            net16_base | (e.net24 << 8) |
            static_cast<uint32_t>(rng.Uniform(256));
        emit(t, src, dst, 445, 320.0);
      }
    }
  }

  // ---- Multi-recon bursts: many distinct sources probing one /24.
  for (const Recon& r : recons) {
    for (uint32_t s = 0;
         s < static_cast<uint32_t>(options.recon_sources); ++s) {
      const uint32_t src = SourceIp(
          (r.first_source + s) % options.num_sources);
      for (int probe = 0; probe < 4; ++probe) {
        const uint64_t t = r.hour * 3600 + rng.Uniform(3600);
        const uint32_t dst = net16_base | (r.net24 << 8) |
                             static_cast<uint32_t>(rng.Uniform(256));
        emit(t, src, dst, r.port, 60.0);
      }
    }
  }
  return fact;
}

}  // namespace csm
