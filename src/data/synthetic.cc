#include "data/synthetic.h"

#include "common/rng.h"

namespace csm {

FactTable GenerateSyntheticFacts(SchemaPtr schema,
                                 const SyntheticDataOptions& options) {
  Rng rng(options.seed);
  FactTable fact(schema);
  fact.Reserve(options.rows);
  const int d = fact.num_dims();
  const int m = fact.num_measures();
  std::vector<Value> dims(d);
  std::vector<double> measures(m);
  for (size_t row = 0; row < options.rows; ++row) {
    for (int i = 0; i < d; ++i) {
      dims[i] = rng.Uniform(options.base_cardinality);
    }
    for (int i = 0; i < m; ++i) {
      measures[i] = static_cast<double>(rng.Uniform(100));
    }
    fact.AppendRow(dims.data(), measures.data());
  }
  return fact;
}

}  // namespace csm
