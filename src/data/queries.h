#ifndef CSM_DATA_QUERIES_H_
#define CSM_DATA_QUERIES_H_

#include "common/result.h"
#include "workflow/workflow.h"

namespace csm {

/// The evaluation workloads of §7, as reusable workflow builders. Every
/// bench, example, and cross-engine test that reproduces a paper figure
/// goes through these, so the workloads are defined exactly once.

/// §7.1 Q1 — child/parent combination: `num_children` basic measures at
/// child granularities, each rolled into a parent region set at (d0:L1)
/// via a child/parent match join, then combined into one composite value.
/// The paper runs num_children = 7 for Fig. 6(a) and sweeps 2..6 for
/// Fig. 6(c). Expects a MakeSyntheticSchema(4, 3, ...) schema.
Result<Workflow> MakeQ1ChildParent(SchemaPtr schema, int num_children);

/// §7.1 Q2 — sibling chain: a basic hourly-style measure followed by
/// `chain_length` nested moving-window (sibling) aggregations of width
/// `window + 1`. Fig. 6(b) runs 2 and 7 levels; Fig. 6(d) sweeps 2..7.
Result<Workflow> MakeQ2SiblingChain(SchemaPtr schema, int chain_length,
                                    int window = 3);

/// §7.2 query 1 — network escalation detection: per (hour, target /24)
/// traffic volume, compared against the previous hour via a sibling match
/// join; alerts are hours whose volume grew by more than `factor`.
/// Expects the MakeNetworkLogSchema layout.
Result<Workflow> MakeEscalationQuery(SchemaPtr schema,
                                     double factor = 3.0);

/// §7.2 query 2 — multi-recon detection: three child/parent match joins
/// over per-(hour, target /24, source) packet counts — distinct sources,
/// total volume, max per-source volume — combined into a recon indicator.
Result<Workflow> MakeMultiReconQuery(SchemaPtr schema,
                                     double min_sources = 20.0);

/// Fig. 6(f) — both network analyses fused into one workflow, sharing the
/// single sort/scan pass.
Result<Workflow> MakeCombinedNetworkQuery(SchemaPtr schema);

/// The paper's running example (Examples 1-5 of §3.1), on the network
/// schema: hourly per-source counts, busy-source count/traffic, six-hour
/// moving average, and the final ratio.
Result<Workflow> MakeRunningExampleQuery(SchemaPtr schema);

}  // namespace csm

#endif  // CSM_DATA_QUERIES_H_
